// The batched multi-worker forwarding pipeline.
//
// Topology: one feeder (the calling thread) fans PacketBatches out over N
// worker shards through fixed-capacity SPSC rings; workers run to
// completion (lookup resolved on the shard that popped the batch — no
// further hand-off) and publish next hops into the caller's output array.
// When a ring is full the feeder spins-then-yields until the shard drains —
// bounded backpressure, so memory use is capped at N * ring_capacity
// batches no matter how fast the source is.
//
// Dispatch is RSS-style flow-hash sharding: shard = hash(dest) mapped onto
// [0, N), so every packet of a flow lands on the same worker. That keeps
// each shard's working set core-private — its §3.5 ClueCache entries and
// hot clue-table lines are never bounced between cores by packets of the
// same flow landing elsewhere, which is what round-robin dispatch did. The
// feeder keeps one open (claimed but unpublished) batch per shard and
// publishes it when full; partial tails are flushed before the rings close.
//
// Every shard owns its CluePort / AccessCounter / Rng (see worker.h), which
// makes the data plane share-nothing; run() merges the per-worker counters
// and port stats into one PipelineStats via AccessCounter::mergeFrom once
// the workers have joined. With learning off and the §3.5 cache off,
// per-packet accounting is deterministic, so the merged totals equal a
// single-threaded run over the same stream — pipeline_test asserts exactly
// that, and the equality is what lets all the paper's §6 access-count
// results carry over unchanged to the parallel data plane.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "mem/alloc_hook.h"
#include "mem/arena.h"
#include "pipeline/worker.h"
#include "common/check.h"

namespace cluert::pipeline {

struct PipelineOptions {
  std::size_t workers = 4;
  std::size_t batch_size = kDefaultBatch;  // clamped to [1, kMaxBatch]
  // Per-worker ring capacity in batches; the backpressure bound.
  std::size_t ring_batches = 64;
  // Base seed split per worker via Rng::forThread.
  std::uint64_t seed = 1;
  // Deepest tier of the idle/full backoff escalation (spin -> yield ->
  // sleep). Relevant when threads outnumber cores: shorter sleeps react
  // faster, longer sleeps give the running thread longer bursts.
  std::uint32_t backoff_sleep_us = 50;
  // Clamp `workers` to std::thread::hardware_concurrency(). Oversubscribing
  // cores never helps a run-to-completion data plane (the threads just trade
  // timeslices; BENCH_throughput's 8w rows were *slower* than 4w on a 4-core
  // host) — so by default the pipeline refuses to silently degrade: it
  // clamps, warns on stderr, and reports both counts in PipelineStats.
  // Tests that deliberately oversubscribe to widen sanitizer interleavings
  // opt out.
  bool clamp_to_hardware = true;
  // When the pipeline degenerates to a single worker (after clamping, or by
  // request), resolve batches inline on the calling thread instead of
  // ping-ponging one core between a feeder and one worker thread through a
  // ring. Identical results and stats; DPDK calls this run-to-completion on
  // one lcore. Tests that specifically exercise the threaded 1-worker path
  // opt out.
  bool inline_serial = true;

  // CluePort configuration, replicated per shard.
  lookup::Method method = lookup::Method::kPatricia;
  lookup::ClueMode mode = lookup::ClueMode::kAdvance;
  bool learn = false;
  std::size_t expected_clues = 1 << 10;
  std::size_t cache_entries = 0;
  NeighborIndex neighbor_index = 0;

  // Observability (src/obs/). `registry` non-null: every shard binds its
  // per-worker metric cells (lookup_case_total, lookup_accesses, ...) and
  // run() publishes the merged region counters post-join. `trace.enabled`:
  // each shard owns a Tracer — batch spans always, per-lookup events when
  // the tree was built with CLUERT_TRACE. Both default off: an unobserved
  // pipeline pays one pointer test per packet.
  obs::MetricRegistry* registry = nullptr;
  obs::TraceOptions trace;
};

// Aggregated view of one run(): the merged per-worker counters in the same
// vocabulary (AccessCounter / CluePort::Stats fields) the single-threaded
// experiments report, plus throughput and load-balance figures.
struct PipelineStats {
  std::size_t workers = 0;
  // Worker count the caller asked for, pre-clamp; equals `workers` unless
  // PipelineOptions::clamp_to_hardware trimmed an oversubscribed request.
  std::size_t requested_workers = 0;
  std::size_t batch_size = 0;

  std::uint64_t packets = 0;
  std::uint64_t batches = 0;
  double seconds = 0.0;
  double packetsPerSec() const { return seconds > 0 ? packets / seconds : 0; }

  // Sum over shards of every data-plane memory access (mergeFrom).
  mem::AccessCounter accesses;
  double accessesPerPacket() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(accesses.total()) /
                              static_cast<double>(packets);
  }

  // Merged CluePort::Stats (field-wise sums over shards).
  std::uint64_t table_hits = 0;
  std::uint64_t table_misses = 0;
  std::uint64_t no_clue = 0;
  std::uint64_t fd_direct = 0;
  std::uint64_t searched = 0;
  std::uint64_t search_failed = 0;

  // Per-shard packet counts — min/max/mean expose feeder imbalance.
  Summary worker_packets;

  // max/mean of the per-shard packet counts: 1.0 is a perfectly balanced
  // run, 2.0 means the hottest shard carried twice its fair share. Under
  // flow-hash dispatch this is a property of the traffic (a single elephant
  // flow pins one shard), so benches report it instead of pretending
  // round-robin balance.
  double shardImbalance() const {
    const double m = worker_packets.mean();
    return m > 0 ? worker_packets.max() / m : 0.0;
  }

  // Heap allocations inside the steady-state window (feeder loop after the
  // workers spawned + each shard's loop after its warm-up batch). The hot
  // path's contract is ZERO; `alloc_hook_active` false means the counting
  // hook was compiled out (sanitizer build) and the zero is vacuous.
  std::uint64_t steady_allocs = 0;
  bool alloc_hook_active = false;

  // Per-batch resolve nanoseconds across all shards (Summary::merge of the
  // workers' summaries). Populated only when the run traced (the batch
  // clock reads ride on the span instrumentation); empty otherwise.
  Summary batch_ns;

  // Sum over shards of batches whose pinned table version differed from the
  // shard's previous batch — how often the data plane actually observed a
  // swap. Zero for unversioned runs.
  std::uint64_t version_changes = 0;
};

// One-line human-readable rendering (pipeline.cc).
std::string formatStats(const PipelineStats& s);

template <typename A>
class Pipeline {
 public:
  using WorkerT = Worker<A>;
  using PortT = core::CluePort<A>;
  using PrefixT = ip::Prefix<A>;

  // A packet as the upstream link presents it: destination + clue option.
  struct Input {
    A dest{};
    core::ClueField clue;
  };

  // Builds the shards. Control-plane work (port construction, the Advance
  // neighbor annotation inside CluePort's ctor) runs here, on the calling
  // thread, strictly before any worker thread exists. Shards are placed in
  // the pipeline's arena, each on its own cache-line boundary — no worker's
  // hot state shares a line with another's.
  Pipeline(lookup::LookupSuite<A>& suite,
           const trie::BinaryTrie<A>* neighbor_trie,
           const PipelineOptions& options)
      : options_(sanitized(options)),
        requested_workers_(options.workers == 0 ? 1 : options.workers) {
    for (std::size_t w = 0; w < options_.workers; ++w) {
      typename PortT::Options popt;
      popt.method = options_.method;
      popt.mode = options_.mode;
      popt.learn = options_.learn;
      popt.neighbor_index = options_.neighbor_index;
      popt.expected_clues = options_.expected_clues;
      popt.cache_entries = options_.cache_entries;
      workers_.push_back(arena_.template create<WorkerT>(
          w, options_.seed, options_.ring_batches,
          std::make_unique<PortT>(suite, neighbor_trie, popt),
          options_.backoff_sleep_us));
      if (options_.registry != nullptr || options_.trace.enabled) {
        workers_.back()->enableObs(options_.registry, options_.trace,
                                   options_.seed);
      }
    }
    open_.assign(workers_.size(), nullptr);
    announce();
  }

  // Epoch-versioned construction (the churn-safe data plane): every shard
  // gets an *unbound* port that borrows suite + clue table from the version
  // it pins per batch, so a control-plane RouteUpdater can publish while
  // run() is in flight. Learning and precompute() don't apply — versions
  // arrive fully built, and a version-bound port never mutates the shared
  // table (a clue-table miss routes via the common lookup).
  Pipeline(rib::VersionedTables<A>& versions, const PipelineOptions& options)
      : options_(sanitized(options)),
        requested_workers_(options.workers == 0 ? 1 : options.workers) {
    CLUERT_CHECK(options_.workers <= rib::VersionedTables<A>::kMaxEpochWorkers)
        << options_.workers << " workers exceed the epoch-slot array";
    for (std::size_t w = 0; w < options_.workers; ++w) {
      typename PortT::Options popt;
      popt.method = options_.method;
      popt.mode = options_.mode;
      popt.learn = false;
      popt.neighbor_index = options_.neighbor_index;
      popt.expected_clues = options_.expected_clues;
      popt.cache_entries = options_.cache_entries;
      workers_.push_back(arena_.template create<WorkerT>(
          w, options_.seed, options_.ring_batches,
          std::make_unique<PortT>(popt), options_.backoff_sleep_us));
      workers_.back()->bindVersions(&versions);
      if (options_.registry != nullptr || options_.trace.enabled) {
        workers_.back()->enableObs(options_.registry, options_.trace,
                                   options_.seed);
      }
    }
    open_.assign(workers_.size(), nullptr);
    announce();
  }

  const PipelineOptions& options() const { return options_; }
  WorkerT& worker(std::size_t w) { return *workers_[w]; }

  // Installs the clue universe into every shard's table (§3.3.2
  // pre-processing) — the usual setup when running with learn = false.
  void precompute(std::span<const PrefixT> clues) {
    for (auto& w : workers_) w->port().precompute(clues);
  }

  // Drives the whole input stream through the pipeline; out[i] receives the
  // next hop chosen for in[i] (kNoNextHop: no route). Blocking: spawns the
  // worker threads, feeds, closes the rings, joins, aggregates.
  PipelineStats run(std::span<const Input> in, std::span<NextHop> out) {
    return run(in, out, {});
  }

  // Versioned-run variant: `version_out`, when non-empty (sized like `out`),
  // receives the sequence number of the table version each packet was
  // resolved against — the churn oracle's ground truth for comparing out[i]
  // with a quiescent lookup at that version.
  PipelineStats run(std::span<const Input> in, std::span<NextHop> out,
                    std::span<std::uint64_t> version_out) {
    CLUERT_CHECK(in.size() == out.size())
        << in.size() << " inputs vs " << out.size() << " out slots";
    CLUERT_CHECK(version_out.empty() || version_out.size() == out.size())
        << version_out.size() << " version slots vs " << out.size() << " out";
    CLUERT_CHECK(in.size() <=
                 std::size_t{std::numeric_limits<std::uint32_t>::max()})
        << in.size() << " packets overflow the 32-bit batch seq";
    const auto t0 = std::chrono::steady_clock::now();
    // The pipeline is reusable: reopen the rings the previous run() closed
    // and zero the per-run counters, both while every shard is quiescent
    // (workers joined last run; none spawned yet). Stats therefore describe
    // THIS run, and a mid-stream worker can never mistake the previous
    // run's close() for its own end-of-stream — that race silently dropped
    // whole batches on reused pipelines.
    for (auto* w : workers_) {
      w->ring().reopen();
      w->resetRunCounters();
    }
    std::uint64_t feeder_steady = 0;
    if (workers_.size() == 1 && options_.inline_serial) {
      feeder_steady = runInline(in, out, version_out);
    } else {
      feeder_steady = runThreaded(in, out, version_out);
    }
    const auto t1 = std::chrono::steady_clock::now();
    PipelineStats s = aggregate(std::chrono::duration<double>(t1 - t0).count());
    s.steady_allocs += feeder_steady;
    // Region totals are merged per run (the workers' counters are quiescent
    // now); the per-packet families were already fed live by the shards.
    if (options_.registry != nullptr) {
      obs::publishAccessCounter(*options_.registry, s.accesses);
    }
    return s;
  }

  // Merged trace rings of every shard, oldest-first per worker and sorted by
  // start time overall. Meaningful after run() returned (the shards own
  // their rings; post-join they are quiescent).
  std::vector<obs::TraceEvent> traceEvents() const {
    std::vector<obs::TraceEvent> out;
    for (const auto& w : workers_) {
      if (w->tracer() == nullptr) continue;
      const auto ev = w->tracer()->events();
      out.insert(out.end(), ev.begin(), ev.end());
    }
    std::sort(out.begin(), out.end(),
              [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                return a.start_ns < b.start_ns;
              });
    return out;
  }

  std::vector<obs::SpanEvent> traceSpans() const {
    std::vector<obs::SpanEvent> out;
    for (const auto& w : workers_) {
      if (w->tracer() == nullptr) continue;
      const auto sp = w->tracer()->spans();
      out.insert(out.end(), sp.begin(), sp.end());
    }
    std::sort(out.begin(), out.end(),
              [](const obs::SpanEvent& a, const obs::SpanEvent& b) {
                return a.start_ns < b.start_ns;
              });
    return out;
  }

 private:
  static PipelineOptions sanitized(PipelineOptions o) {
    if (o.workers == 0) o.workers = 1;
    if (o.batch_size == 0) o.batch_size = 1;
    if (o.batch_size > kMaxBatch) o.batch_size = kMaxBatch;
    if (o.ring_batches < 2) o.ring_batches = 2;
    if (o.clamp_to_hardware) {
      const auto hc =
          static_cast<std::size_t>(std::thread::hardware_concurrency());
      // hardware_concurrency() may legitimately return 0 ("unknown"); never
      // clamp on a host we cannot size.
      if (hc != 0 && o.workers > hc) o.workers = hc;
    }
    return o;
  }

  // Post-construction reporting: the clamp warning (a silently degraded
  // data plane is the bug this fixes) and the standing gauges.
  void announce() const {
    if (options_.workers < requested_workers_) {
      std::fprintf(stderr,
                   "cluert::pipeline: clamped %zu requested workers to %zu "
                   "(hardware_concurrency); oversubscribing cores only adds "
                   "context switches\n",
                   requested_workers_, options_.workers);
    }
    if (options_.registry == nullptr) return;
    options_.registry
        ->gauge("pipeline_workers", "Worker shards in the pipeline")
        .set(static_cast<double>(options_.workers));
    options_.registry
        ->gauge("pipeline_batch_size", "Packets per pipeline batch")
        .set(static_cast<double>(options_.batch_size));
    options_.registry
        ->gauge("pipeline_workers_clamped",
                "Requested-minus-actual workers after the hardware clamp")
        .set(static_cast<double>(requested_workers_ - options_.workers));
  }

  // RSS-style dispatch: every packet of a flow (destination) maps to the
  // same shard. The multiply-shift maps the low 32 hash bits onto [0, n)
  // without a divide (Lemire's fastrange).
  static std::size_t flowShard(const A& dest, std::size_t n) {
    const auto h = static_cast<std::uint64_t>(std::hash<A>{}(dest));
    return static_cast<std::size_t>(
        ((h & 0xffffffffu) * static_cast<std::uint64_t>(n)) >> 32);
  }

  // The threaded fan-out. Returns the feeder's steady-window allocation
  // count (snapshot taken after the worker threads spawned, so thread
  // bring-up is warm-up; the feed loop itself must not allocate).
  std::uint64_t runThreaded(std::span<const Input> in, std::span<NextHop> out,
                            std::span<std::uint64_t> version_out) {
    std::vector<std::thread> threads;
    threads.reserve(workers_.size());
    for (auto* w : workers_) {
      threads.emplace_back([w, out, version_out] { w->run(out, version_out); });
    }

    const std::uint64_t alloc_base = mem::threadAllocs();
    // Feed: flow-hash the destination to its shard, append to the shard's
    // open batch (claimed in the ring on first use — zero staging copy),
    // publish when full. A full ring means the shard is the bottleneck;
    // back off with escalation.
    Rng feeder_rng = Rng::forThread(options_.seed, ~std::uint64_t{0});
    const std::size_t n_shards = workers_.size();
    for (std::size_t i = 0; i < in.size(); ++i) {
      const std::size_t shard = flowShard(in[i].dest, n_shards);
      PacketBatch<A>* batch = open_[shard];
      if (batch == nullptr) {
        auto& ring = workers_[shard]->ring();
        batch = ring.claim();
        for (std::uint64_t streak = 1; batch == nullptr; ++streak) {
          feederBackoff(feeder_rng, streak, options_.backoff_sleep_us);
          batch = ring.claim();
        }
        batch->clear();
        open_[shard] = batch;
      }
      batch->push(in[i].dest, in[i].clue, static_cast<std::uint32_t>(i));
      if (batch->size() == options_.batch_size) {
        workers_[shard]->ring().publish();
        open_[shard] = nullptr;
      }
    }
    // Tail flush: under flow-hash dispatch every shard can be left holding
    // a partial batch (the stream length is never a multiple of
    // workers x batch for all shards at once). Publish them before the
    // close(), or those packets would be silently dropped.
    for (std::size_t shard = 0; shard < n_shards; ++shard) {
      if (open_[shard] == nullptr) continue;
      workers_[shard]->ring().publish();
      open_[shard] = nullptr;
    }
    for (auto* w : workers_) w->ring().close();
    const std::uint64_t feeder_steady = mem::threadAllocs() - alloc_base;
    for (auto& t : threads) t.join();
    return feeder_steady;
  }

  // The serial-inline path: one worker, resolved on the calling thread.
  // Same shard machinery (version pinning, stats, obs) — minus the ring
  // hand-off and the feeder/worker context-switch ping-pong that made a
  // 1-worker pipeline ~35% slower than the sequential loop on one core.
  // Returns the steady-window allocation count (first batch = warm-up).
  std::uint64_t runInline(std::span<const Input> in, std::span<NextHop> out,
                          std::span<std::uint64_t> version_out) {
    WorkerT& w = *workers_[0];
    std::uint64_t alloc_base = 0;
    bool warmed = false;
    for (std::size_t i = 0; i < in.size();) {
      scratch_batch_.clear();
      const std::size_t end = std::min(i + options_.batch_size, in.size());
      for (; i < end; ++i) {
        scratch_batch_.push(in[i].dest, in[i].clue,
                            static_cast<std::uint32_t>(i));
      }
      w.resolveBatch(scratch_batch_, out, version_out);
      if (!warmed) {
        warmed = true;
        alloc_base = mem::threadAllocs();
      }
    }
    return warmed ? mem::threadAllocs() - alloc_base : 0;
  }

  // Full-ring wait, escalating exactly like Worker::idleBackoff: jittered
  // spin, then yield, then sleep. The sleep tier is what keeps an
  // oversubscribed (workers >= cores) run efficient — a sleeping feeder
  // gives each worker a full timeslice to drain its ring instead of
  // trading the core back every few batches.
  static void feederBackoff(Rng& rng, std::uint64_t streak,
                            std::uint32_t sleep_us) {
    if (streak < 4) {
      const std::uint64_t spins = 32 + rng.uniform(0, 32);
      for (std::uint64_t s = 0; s < spins; ++s) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
      }
      return;
    }
    if (streak < 16 || sleep_us == 0) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }

  PipelineStats aggregate(double seconds) const {
    PipelineStats s;
    s.workers = workers_.size();
    s.requested_workers = requested_workers_;
    s.batch_size = options_.batch_size;
    s.seconds = seconds;
    s.alloc_hook_active = mem::allocHookActive();
    for (const auto& w : workers_) {
      s.packets += w->packets();
      s.batches += w->batches();
      s.accesses.mergeFrom(w->accesses());
      const auto& ps = w->port().stats();
      s.table_hits += ps.table_hits;
      s.table_misses += ps.table_misses;
      s.no_clue += ps.no_clue;
      s.fd_direct += ps.fd_direct;
      s.searched += ps.searched;
      s.search_failed += ps.search_failed;
      s.worker_packets.add(static_cast<double>(w->packets()));
      s.batch_ns.merge(w->batchNs());
      s.version_changes += w->versionChanges();
      s.steady_allocs += w->steadyAllocs();
    }
    return s;
  }

  PipelineOptions options_;
  std::size_t requested_workers_ = 0;
  // Shard placement: each Worker starts on its own cache-line boundary in
  // the arena (destroyed LIFO with it). The vector holds non-owning
  // pointers.
  mem::Arena arena_;
  std::vector<WorkerT*> workers_;
  // Per-shard open (claimed, unpublished) batch of the in-flight feed loop;
  // sized once at construction so run() never allocates it.
  std::vector<PacketBatch<A>*> open_;
  // Batch the serial-inline path fills on the calling thread.
  PacketBatch<A> scratch_batch_;
};

using Pipeline4 = Pipeline<ip::Ip4Addr>;

}  // namespace cluert::pipeline
