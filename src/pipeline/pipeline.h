// The batched multi-worker forwarding pipeline.
//
// Topology: one feeder (the calling thread) fans PacketBatches out
// round-robin over N worker shards through fixed-capacity SPSC rings;
// workers run to completion (lookup resolved on the shard that popped the
// batch — no further hand-off) and publish next hops into the caller's
// output array. When a ring is full the feeder spins-then-yields until the
// shard drains — bounded backpressure, so memory use is capped at
// N * ring_capacity batches no matter how fast the source is.
//
// Every shard owns its CluePort / AccessCounter / Rng (see worker.h), which
// makes the data plane share-nothing; run() merges the per-worker counters
// and port stats into one PipelineStats via AccessCounter::mergeFrom once
// the workers have joined. With learning off and the §3.5 cache off,
// per-packet accounting is deterministic, so the merged totals equal a
// single-threaded run over the same stream — pipeline_test asserts exactly
// that, and the equality is what lets all the paper's §6 access-count
// results carry over unchanged to the parallel data plane.
#pragma once

#include <algorithm>
#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "pipeline/worker.h"
#include "common/check.h"

namespace cluert::pipeline {

struct PipelineOptions {
  std::size_t workers = 4;
  std::size_t batch_size = kDefaultBatch;  // clamped to [1, kMaxBatch]
  // Per-worker ring capacity in batches; the backpressure bound.
  std::size_t ring_batches = 64;
  // Base seed split per worker via Rng::forThread.
  std::uint64_t seed = 1;
  // Deepest tier of the idle/full backoff escalation (spin -> yield ->
  // sleep). Relevant when threads outnumber cores: shorter sleeps react
  // faster, longer sleeps give the running thread longer bursts.
  std::uint32_t backoff_sleep_us = 50;

  // CluePort configuration, replicated per shard.
  lookup::Method method = lookup::Method::kPatricia;
  lookup::ClueMode mode = lookup::ClueMode::kAdvance;
  bool learn = false;
  std::size_t expected_clues = 1 << 10;
  std::size_t cache_entries = 0;
  NeighborIndex neighbor_index = 0;

  // Observability (src/obs/). `registry` non-null: every shard binds its
  // per-worker metric cells (lookup_case_total, lookup_accesses, ...) and
  // run() publishes the merged region counters post-join. `trace.enabled`:
  // each shard owns a Tracer — batch spans always, per-lookup events when
  // the tree was built with CLUERT_TRACE. Both default off: an unobserved
  // pipeline pays one pointer test per packet.
  obs::MetricRegistry* registry = nullptr;
  obs::TraceOptions trace;
};

// Aggregated view of one run(): the merged per-worker counters in the same
// vocabulary (AccessCounter / CluePort::Stats fields) the single-threaded
// experiments report, plus throughput and load-balance figures.
struct PipelineStats {
  std::size_t workers = 0;
  std::size_t batch_size = 0;

  std::uint64_t packets = 0;
  std::uint64_t batches = 0;
  double seconds = 0.0;
  double packetsPerSec() const { return seconds > 0 ? packets / seconds : 0; }

  // Sum over shards of every data-plane memory access (mergeFrom).
  mem::AccessCounter accesses;
  double accessesPerPacket() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(accesses.total()) /
                              static_cast<double>(packets);
  }

  // Merged CluePort::Stats (field-wise sums over shards).
  std::uint64_t table_hits = 0;
  std::uint64_t table_misses = 0;
  std::uint64_t no_clue = 0;
  std::uint64_t fd_direct = 0;
  std::uint64_t searched = 0;
  std::uint64_t search_failed = 0;

  // Per-shard packet counts — min/max/mean expose feeder imbalance.
  Summary worker_packets;

  // Per-batch resolve nanoseconds across all shards (Summary::merge of the
  // workers' summaries). Populated only when the run traced (the batch
  // clock reads ride on the span instrumentation); empty otherwise.
  Summary batch_ns;

  // Sum over shards of batches whose pinned table version differed from the
  // shard's previous batch — how often the data plane actually observed a
  // swap. Zero for unversioned runs.
  std::uint64_t version_changes = 0;
};

// One-line human-readable rendering (pipeline.cc).
std::string formatStats(const PipelineStats& s);

template <typename A>
class Pipeline {
 public:
  using WorkerT = Worker<A>;
  using PortT = core::CluePort<A>;
  using PrefixT = ip::Prefix<A>;

  // A packet as the upstream link presents it: destination + clue option.
  struct Input {
    A dest{};
    core::ClueField clue;
  };

  // Builds the shards. Control-plane work (port construction, the Advance
  // neighbor annotation inside CluePort's ctor) runs here, on the calling
  // thread, strictly before any worker thread exists.
  Pipeline(lookup::LookupSuite<A>& suite,
           const trie::BinaryTrie<A>* neighbor_trie,
           const PipelineOptions& options)
      : options_(sanitized(options)) {
    for (std::size_t w = 0; w < options_.workers; ++w) {
      typename PortT::Options popt;
      popt.method = options_.method;
      popt.mode = options_.mode;
      popt.learn = options_.learn;
      popt.neighbor_index = options_.neighbor_index;
      popt.expected_clues = options_.expected_clues;
      popt.cache_entries = options_.cache_entries;
      workers_.push_back(std::make_unique<WorkerT>(
          w, options_.seed, options_.ring_batches,
          std::make_unique<PortT>(suite, neighbor_trie, popt),
          options_.backoff_sleep_us));
      if (options_.registry != nullptr || options_.trace.enabled) {
        workers_.back()->enableObs(options_.registry, options_.trace,
                                   options_.seed);
      }
    }
    if (options_.registry != nullptr) {
      options_.registry
          ->gauge("pipeline_workers", "Worker shards in the pipeline")
          .set(static_cast<double>(options_.workers));
      options_.registry
          ->gauge("pipeline_batch_size", "Packets per pipeline batch")
          .set(static_cast<double>(options_.batch_size));
    }
  }

  // Epoch-versioned construction (the churn-safe data plane): every shard
  // gets an *unbound* port that borrows suite + clue table from the version
  // it pins per batch, so a control-plane RouteUpdater can publish while
  // run() is in flight. Learning and precompute() don't apply — versions
  // arrive fully built, and a version-bound port never mutates the shared
  // table (a clue-table miss routes via the common lookup).
  Pipeline(rib::VersionedTables<A>& versions, const PipelineOptions& options)
      : options_(sanitized(options)) {
    CLUERT_CHECK(options_.workers <= rib::VersionedTables<A>::kMaxEpochWorkers)
        << options_.workers << " workers exceed the epoch-slot array";
    for (std::size_t w = 0; w < options_.workers; ++w) {
      typename PortT::Options popt;
      popt.method = options_.method;
      popt.mode = options_.mode;
      popt.learn = false;
      popt.neighbor_index = options_.neighbor_index;
      popt.expected_clues = options_.expected_clues;
      popt.cache_entries = options_.cache_entries;
      workers_.push_back(std::make_unique<WorkerT>(
          w, options_.seed, options_.ring_batches,
          std::make_unique<PortT>(popt), options_.backoff_sleep_us));
      workers_.back()->bindVersions(&versions);
      if (options_.registry != nullptr || options_.trace.enabled) {
        workers_.back()->enableObs(options_.registry, options_.trace,
                                   options_.seed);
      }
    }
  }

  const PipelineOptions& options() const { return options_; }
  WorkerT& worker(std::size_t w) { return *workers_[w]; }

  // Installs the clue universe into every shard's table (§3.3.2
  // pre-processing) — the usual setup when running with learn = false.
  void precompute(std::span<const PrefixT> clues) {
    for (auto& w : workers_) w->port().precompute(clues);
  }

  // Drives the whole input stream through the pipeline; out[i] receives the
  // next hop chosen for in[i] (kNoNextHop: no route). Blocking: spawns the
  // worker threads, feeds, closes the rings, joins, aggregates.
  PipelineStats run(std::span<const Input> in, std::span<NextHop> out) {
    return run(in, out, {});
  }

  // Versioned-run variant: `version_out`, when non-empty (sized like `out`),
  // receives the sequence number of the table version each packet was
  // resolved against — the churn oracle's ground truth for comparing out[i]
  // with a quiescent lookup at that version.
  PipelineStats run(std::span<const Input> in, std::span<NextHop> out,
                    std::span<std::uint64_t> version_out) {
    CLUERT_CHECK(in.size() == out.size())
        << in.size() << " inputs vs " << out.size() << " out slots";
    CLUERT_CHECK(version_out.empty() || version_out.size() == out.size())
        << version_out.size() << " version slots vs " << out.size() << " out";
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(workers_.size());
    // The pipeline is reusable: reopen the rings the previous run() closed
    // and zero the per-run counters, both while every shard is quiescent
    // (workers joined last run; none spawned yet). Stats therefore describe
    // THIS run, and a mid-stream worker can never mistake the previous
    // run's close() for its own end-of-stream — that race silently dropped
    // whole batches on reused pipelines.
    for (auto& w : workers_) {
      w->ring().reopen();
      w->resetRunCounters();
    }
    for (auto& w : workers_) {
      threads.emplace_back([&w, out, version_out] { w->run(out, version_out); });
    }

    // Feed: claim the next ring slot of the round-robin shard, fill the
    // batch in place (zero staging copy), publish. A full ring means the
    // shard is the bottleneck; back off with escalation.
    Rng feeder_rng = Rng::forThread(options_.seed, ~std::uint64_t{0});
    std::size_t shard = 0;
    for (std::size_t i = 0; i < in.size();) {
      auto& ring = workers_[shard]->ring();
      PacketBatch<A>* batch = ring.claim();
      for (std::uint64_t streak = 1; batch == nullptr; ++streak) {
        feederBackoff(feeder_rng, streak, options_.backoff_sleep_us);
        batch = ring.claim();
      }
      batch->clear();
      const std::size_t end = std::min(i + options_.batch_size, in.size());
      for (; i < end; ++i) batch->push(in[i].dest, in[i].clue, i);
      ring.publish();
      shard = (shard + 1) % workers_.size();
    }
    for (auto& w : workers_) w->ring().close();
    for (auto& t : threads) t.join();
    const auto t1 = std::chrono::steady_clock::now();
    PipelineStats s = aggregate(std::chrono::duration<double>(t1 - t0).count());
    // Region totals are merged per run (the workers' counters are quiescent
    // now); the per-packet families were already fed live by the shards.
    if (options_.registry != nullptr) {
      obs::publishAccessCounter(*options_.registry, s.accesses);
    }
    return s;
  }

  // Merged trace rings of every shard, oldest-first per worker and sorted by
  // start time overall. Meaningful after run() returned (the shards own
  // their rings; post-join they are quiescent).
  std::vector<obs::TraceEvent> traceEvents() const {
    std::vector<obs::TraceEvent> out;
    for (const auto& w : workers_) {
      if (w->tracer() == nullptr) continue;
      const auto ev = w->tracer()->events();
      out.insert(out.end(), ev.begin(), ev.end());
    }
    std::sort(out.begin(), out.end(),
              [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                return a.start_ns < b.start_ns;
              });
    return out;
  }

  std::vector<obs::SpanEvent> traceSpans() const {
    std::vector<obs::SpanEvent> out;
    for (const auto& w : workers_) {
      if (w->tracer() == nullptr) continue;
      const auto sp = w->tracer()->spans();
      out.insert(out.end(), sp.begin(), sp.end());
    }
    std::sort(out.begin(), out.end(),
              [](const obs::SpanEvent& a, const obs::SpanEvent& b) {
                return a.start_ns < b.start_ns;
              });
    return out;
  }

 private:
  static PipelineOptions sanitized(PipelineOptions o) {
    if (o.workers == 0) o.workers = 1;
    if (o.batch_size == 0) o.batch_size = 1;
    if (o.batch_size > kMaxBatch) o.batch_size = kMaxBatch;
    if (o.ring_batches < 2) o.ring_batches = 2;
    return o;
  }

  // Full-ring wait, escalating exactly like Worker::idleBackoff: jittered
  // spin, then yield, then sleep. The sleep tier is what keeps an
  // oversubscribed (workers >= cores) run efficient — a sleeping feeder
  // gives each worker a full timeslice to drain its ring instead of
  // trading the core back every few batches.
  static void feederBackoff(Rng& rng, std::uint64_t streak,
                            std::uint32_t sleep_us) {
    if (streak < 4) {
      const std::uint64_t spins = 32 + rng.uniform(0, 32);
      for (std::uint64_t s = 0; s < spins; ++s) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
      }
      return;
    }
    if (streak < 16 || sleep_us == 0) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }

  PipelineStats aggregate(double seconds) const {
    PipelineStats s;
    s.workers = workers_.size();
    s.batch_size = options_.batch_size;
    s.seconds = seconds;
    for (const auto& w : workers_) {
      s.packets += w->packets();
      s.batches += w->batches();
      s.accesses.mergeFrom(w->accesses());
      const auto& ps = w->port().stats();
      s.table_hits += ps.table_hits;
      s.table_misses += ps.table_misses;
      s.no_clue += ps.no_clue;
      s.fd_direct += ps.fd_direct;
      s.searched += ps.searched;
      s.search_failed += ps.search_failed;
      s.worker_packets.add(static_cast<double>(w->packets()));
      s.batch_ns.merge(w->batchNs());
      s.version_changes += w->versionChanges();
    }
    return s;
  }

  PipelineOptions options_;
  std::vector<std::unique_ptr<WorkerT>> workers_;
};

using Pipeline4 = Pipeline<ip::Ip4Addr>;

}  // namespace cluert::pipeline
