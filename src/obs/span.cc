#include "obs/span.h"

namespace cluert::obs {

std::string_view spanVerdictName(SpanVerdict v) {
  switch (v) {
    case SpanVerdict::kForwarded:
      return "forwarded";
    case SpanVerdict::kDelivered:
      return "delivered";
    case SpanVerdict::kNoRoute:
      return "no_route";
    case SpanVerdict::kTtlExpired:
      return "ttl_expired";
    case SpanVerdict::kSendError:
      return "send_error";
  }
  return "unknown";
}

SpanCollector::SpanCollector(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void SpanCollector::record(const PacketSpan& s) {
  sync::MutexLock lock(mu_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(s);
    return;
  }
  ring_[head_] = s;
  head_ = (head_ + 1) % capacity_;
  full_ = true;
  ++dropped_;
}

std::vector<PacketSpan> SpanCollector::drain() {
  sync::MutexLock lock(mu_);
  std::vector<PacketSpan> out;
  out.reserve(ring_.size());
  if (full_) {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
  } else {
    out = ring_;
  }
  ring_.clear();
  head_ = 0;
  full_ = false;
  return out;
}

std::uint64_t SpanCollector::recorded() const {
  sync::MutexLock lock(mu_);
  return recorded_;
}

std::uint64_t SpanCollector::dropped() const {
  sync::MutexLock lock(mu_);
  return dropped_;
}

}  // namespace cluert::obs
