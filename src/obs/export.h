// Export layer: turns metric snapshots and trace rings into the three
// interchange formats the tooling around this repo speaks.
//
//  * Prometheus text exposition — for scraping / tools/metrics_diff.py
//    perf gating. One # HELP / # TYPE block per family, histograms as
//    cumulative le-buckets with _sum and _count.
//  * JSONL — one JSON object per TraceEvent, for ad-hoc jq analysis of the
//    per-lookup distributions (§6 style).
//  * chrome://tracing JSON — per-worker timelines (batch spans + sampled
//    lookup events) loadable in Perfetto / chrome://tracing.
#pragma once

#include <span>
#include <string>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace cluert::obs {

// Prometheus text exposition format (version 0.0.4).
std::string toPrometheus(const MetricSnapshot& snapshot);

// One compact JSON object per event, newline separated.
std::string toJsonl(std::span<const TraceEvent> events);

// One JSON object per hop-span, newline separated — the /trace admin
// endpoint body and tools/trace_merge.py input. `router` labels the
// emitting daemon; the 128-bit trace id renders as 32 hex digits so the
// merge tool can join hops textually.
std::string spansToJsonl(std::span<const PacketSpan> spans,
                         const std::string& router);

// chrome://tracing "JSON object format": {"traceEvents": [...]}. Spans
// become complete ("X") events on tid = worker; sampled lookups become "X"
// events one track down, with outcome/clue/access args; workers get
// thread_name metadata. `process_name` labels the pid row in the UI.
std::string toChromeTrace(std::span<const TraceEvent> events,
                          std::span<const SpanEvent> spans,
                          const std::string& process_name = "cluert");

// Convenience: write `content` to `path`, returning false (and leaving a
// partial file possibly behind) on I/O failure.
bool writeFile(const std::string& path, const std::string& content);

}  // namespace cluert::obs
