// Always-on flight recorder (DESIGN.md §11): a fixed-size lock-free ring of
// recent daemon events per worker — drops, decode rejects, table publishes,
// reloads, signals — kept regardless of trace sampling, so an hours-long
// soak that dies still leaves its last few thousand events behind. Dumped
// on SIGQUIT / fatal signal and via the /debug/flight admin endpoint.
//
// Concurrency model (the memory-ordering argument, also in DESIGN.md §11):
// each FlightRing has exactly ONE writer thread (the owning datapath shard,
// or a control-plane thread) and any number of concurrent readers. A push
// writes the slot's fields with relaxed atomic stores, then publishes by
// storing the monotonically increasing event count `n_` with release. A
// reader loads `n_` with acquire (so every slot at index < n_ has its
// fields visible), copies the window [max(0, n-capacity), n) with relaxed
// loads, then re-loads `n_` as n': any copied index the writer may have
// touched in the meantime is discarded as potentially torn — that is every
// index <= n' - capacity, because the writer can be mid-push of event n'
// (slot fields stored, count not yet published) and that push reuses the
// slot of event n' - capacity. A snapshot of a full ring therefore yields
// at most capacity-1 events, trading one slot for tear-freedom.
// The writer never waits, never locks, never allocates — a push is a
// handful of relaxed stores plus one release store, O(ns) regardless of
// ring occupancy — and a reader returns only fully published, untorn
// events. Readers are also safe from a signal handler: dumpTo(fd) formats
// into stack buffers and calls only write(2).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cluert::obs {

// What happened. `a`/`b` carry per-kind detail (counts, sequence numbers,
// signal numbers, DecodeError codes) — the dump prints them raw.
enum class FlightKind : std::uint8_t {
  kNone = 0,
  kRxBatch,       // a = datagrams received in the batch
  kDecodeReject,  // a = netio::DecodeError code
  kNoRoute,       // a = packets dropped with no BMP this batch
  kTtlExpired,    // a = packets dropped on TTL this batch
  kSendError,     // a = datagrams the kernel refused this batch
  kTraceStart,    // a = trace id_hi, b = trace id_lo (ingress sample)
  kPublish,       // a = table version seq going live
  kReload,        // a = live seq after the reload (0 = reload failed)
  kSignal,        // a = signal number
  kDrain,         // shutdown drain began on this shard
  kShutdown,      // daemon shutdown sequencing began
};

inline constexpr std::size_t kFlightKindCount = 12;

std::string_view flightKindName(FlightKind k);

struct FlightEvent {
  std::uint64_t ns = 0;  // steady-clock, same timebase as Tracer::nowNs()
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  FlightKind kind = FlightKind::kNone;
  std::uint8_t worker = 0;
};

class FlightRing {
 public:
  // Power of two; at 32 B/slot one ring is 32 KiB — small enough to keep
  // one per worker always-on, deep enough that a crash dump still shows
  // seconds of context at any sane drop rate.
  static constexpr std::size_t kCapacity = 1024;

  FlightRing() = default;
  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  // Control-plane, before the writer thread starts.
  void setWorker(std::uint8_t worker) { worker_ = worker; }
  std::uint8_t worker() const { return worker_; }

  // Writer thread only. Timestamps with the steady clock.
  void push(FlightKind kind, std::uint64_t a = 0, std::uint64_t b = 0);
  // Writer thread only; explicit timestamp (tests, replay).
  void pushAt(std::uint64_t ns, FlightKind kind, std::uint64_t a = 0,
              std::uint64_t b = 0);

  // Total events ever pushed (monotonic; the ring holds the last kCapacity).
  std::uint64_t count() const { return n_.load(std::memory_order_acquire); }

  // Any thread: oldest-first copy of the current window, discarding slots
  // the writer overtook (or may be overwriting) mid-copy — at most
  // kCapacity-1 events from a full ring. Allocates — not for signal
  // handlers.
  std::vector<FlightEvent> snapshot() const;

  // Any thread, async-signal-safe: one "flight <worker> <ns> <kind> <a> <b>"
  // line per event to `fd` using only write(2) and stack formatting.
  void dumpTo(int fd) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    // kind | worker << 8, packed so the slot stays four atomics wide.
    std::atomic<std::uint16_t> meta{0};
  };

  std::array<Slot, kCapacity> slots_;
  std::atomic<std::uint64_t> n_{0};
  std::uint8_t worker_ = 0;
};

// The daemon-wide recorder: one ring per datapath shard plus control-plane
// rings (admin/signal thread, route updater). Rings are independent; the
// recorder only owns them and renders dumps.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t rings);

  std::size_t ringCount() const { return rings_.size(); }
  FlightRing& ring(std::size_t i) { return *rings_[i]; }
  const FlightRing& ring(std::size_t i) const { return *rings_[i]; }

  // {"rings":[{"worker":w,"events":[...]}, ...]} — the /debug/flight and
  // SIGQUIT dump body. `name` labels the emitting daemon.
  std::string toJson(std::string_view name) const;

  // Async-signal-safe: every ring's dumpTo(fd), bracketed by marker lines.
  void dumpTo(int fd) const;

  // Registers `r` as the process-wide recorder the fatal-signal handler
  // dumps (cluertd_main installs the handler). Null unregisters.
  static void installGlobal(FlightRecorder* r);
  static FlightRecorder* global();

 private:
  // unique_ptr per ring: FlightRing holds atomics and cannot move, and the
  // ring addresses must stay stable once writer threads hold them.
  std::vector<std::unique_ptr<FlightRing>> rings_;
};

}  // namespace cluert::obs
