// Per-lookup trace events and the ring-buffer tracer that collects them.
//
// A TraceEvent is one sampled lookup in the vocabulary of the paper: the
// clue length carried by the packet, the analysis level (Simple / Advance),
// the §3.1.2 case outcome (1 / 2 / 3, plus miss and no-clue), whether
// Claim 1 is what emptied the candidate set, the per-mem::Region access
// deltas, and nanosecond timing. A Tracer belongs to one worker thread
// (same single-mutator discipline as mem::AccessCounter); the pipeline
// merges rings after join().
//
// Cost control, two layers:
//  * compile time — the hot-path hooks test obs::kTraceCompiled, a constexpr
//    driven by the CLUERT_TRACE CMake option (OFF for Release builds), so a
//    release data plane carries no tracing code at all;
//  * run time    — 1-in-N sampling. The sample pattern is deterministic:
//    every sample_every-th call fires, phase-shifted per worker by a draw
//    from Rng::forThread(seed, worker), so a run is reproducible and the
//    shards don't sample in lockstep.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "mem/access_counter.h"

#if !defined(CLUERT_TRACE_ENABLED)
#define CLUERT_TRACE_ENABLED 1
#endif

namespace cluert::obs {

inline constexpr bool kTraceCompiled = CLUERT_TRACE_ENABLED != 0;

// How one lookup resolved, mapping §3.1.2's cases onto the data plane:
//   kCase1 — clue vertex absent from the receiver's trie; FD answers.
//   kCase2 — vertex present but no longer match possible; FD answers.
//   kCase3 — a continued search ran (whether or not it found a match).
// kNoClue / kMiss are the non-paper outcomes a deployment also sees: the
// packet carried no clue, or the clue was not in the table (learning path).
enum class Outcome : std::uint8_t { kNoClue, kMiss, kCase1, kCase2, kCase3 };

inline constexpr std::size_t kOutcomeCount = 5;

std::string_view outcomeName(Outcome o);

struct TraceEvent {
  std::uint64_t start_ns = 0;  // steady-clock, Tracer::nowNs()
  std::uint32_t dur_ns = 0;
  std::uint32_t worker = 0;
  std::int16_t clue_len = -1;  // -1: packet carried no clue
  std::uint8_t mode = 0;       // lookup::ClueMode of the port
  Outcome outcome = Outcome::kNoClue;
  bool claim1_skip = false;    // case 2 by Claim-1 pruning, not a leaf
  bool search_failed = false;  // case-3 continuation fell back to FD
  // Access deltas for this lookup, by region. uint16 is ample: a single
  // lookup touches at most a few dozen nodes even in the Regular method.
  std::array<std::uint16_t, mem::AccessCounter::kRegions> accesses{};

  std::uint32_t accessTotal() const {
    std::uint32_t t = 0;
    for (const auto a : accesses) t += a;
    return t;
  }
};

// A worker-timeline span: one batch resolved by one pipeline shard. Spans
// are recorded whenever a tracer is attached (they cost two clock reads per
// *batch*, not per packet, so they are not compile-gated) and feed the
// chrome://tracing export.
struct SpanEvent {
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t worker = 0;
  std::uint32_t packets = 0;
};

struct TraceOptions {
  bool enabled = false;
  // 1-in-N lookup sampling. 1 traces every lookup.
  std::uint32_t sample_every = 64;
  // Ring capacities; the newest events win when a ring wraps.
  std::size_t event_capacity = 4096;
  std::size_t span_capacity = 4096;
};

class Tracer {
 public:
  // `seed` is the pipeline seed; the (seed, worker) pair fixes the sampling
  // phase, so runs are reproducible and workers are decorrelated.
  Tracer(const TraceOptions& options, std::uint64_t seed,
         std::uint32_t worker);

  bool enabled() const { return options_.enabled; }
  std::uint32_t worker() const { return worker_; }
  const TraceOptions& options() const { return options_; }

  // True on the sampled 1-in-N calls. Owner-thread only.
  bool shouldSample() {
    if (!options_.enabled) return false;
    if (++tick_ < next_) return false;
    next_ += options_.sample_every;
    return true;
  }

  // Owner-thread only; overwrites the oldest event when full.
  void record(const TraceEvent& e);
  void span(const SpanEvent& s);

  // Oldest-first copies. Call after the owning thread quiesced (the pipeline
  // calls these post-join).
  std::vector<TraceEvent> events() const;
  std::vector<SpanEvent> spans() const;

  std::uint64_t eventsDropped() const { return events_dropped_; }
  std::uint64_t spansDropped() const { return spans_dropped_; }

  // Monotonic nanoseconds (steady clock), the timebase of every event.
  static std::uint64_t nowNs();

 private:
  TraceOptions options_;
  std::uint32_t worker_;
  std::uint64_t tick_ = 0;
  std::uint64_t next_ = 0;  // next sampled tick (phase + k * sample_every)

  std::vector<TraceEvent> ring_;
  std::size_t ring_head_ = 0;  // next write position once the ring is full
  bool ring_full_ = false;
  std::uint64_t events_dropped_ = 0;

  std::vector<SpanEvent> span_ring_;
  std::size_t span_head_ = 0;
  bool span_full_ = false;
  std::uint64_t spans_dropped_ = 0;
};

}  // namespace cluert::obs
