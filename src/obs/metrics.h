// Lock-free metric instruments and the registry that names them.
//
// The paper's argument is statistical — §6 reports *distributions* of memory
// accesses per lookup, not just means — so the data plane needs instruments
// it can feed per packet without serialising shards. The design follows the
// ownership discipline already used by mem::AccessCounter::mergeFrom: every
// instrument is an array of per-worker shards (cache-line padded, relaxed
// atomics), the hot path touches only its own shard, and aggregation happens
// at snapshot() time on whatever thread asks. Relaxed atomics make a
// mid-run snapshot safe (it reads a slightly stale but tear-free value) and
// keep the per-event cost at one uncontended fetch_add.
//
// Registration (counter()/gauge()/histogram()) is control-plane: it takes a
// mutex, deduplicates by (name, labels) and returns a reference that stays
// valid for the registry's lifetime. Hot paths never call it — they bind
// once (see hooks.h) and keep the shard cell pointer.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace cluert::obs {

// Upper bound on pipeline workers feeding one registry. Shard ids are taken
// modulo this, so an oversized worker set degrades to sharing (still
// correct — the cells are atomic), never to UB.
inline constexpr std::size_t kMetricShards = 16;

inline constexpr std::size_t kCacheLineBytes = 64;

// One shard of a counter: a cache-line-padded relaxed atomic, so two workers
// bumping adjacent shards never contend on a line.
struct alignas(kCacheLineBytes) CounterCell {
  std::atomic<std::uint64_t> v{0};

  void inc(std::uint64_t n = 1) { v.fetch_add(n, std::memory_order_relaxed); }
  // Named get() rather than load() so it cannot be mistaken for (and is not
  // flagged as) a raw std::atomic access with an implicit order.
  std::uint64_t get() const { return v.load(std::memory_order_relaxed); }
};

// Monotone event count, sharded per worker.
class Counter {
 public:
  CounterCell& shard(std::size_t s) { return cells_[s % kMetricShards]; }

  // Convenience for single-threaded callers (benchmarks, routers).
  void inc(std::uint64_t n = 1) { cells_[0].inc(n); }

  std::uint64_t value() const {
    std::uint64_t t = 0;
    for (const auto& c : cells_) t += c.get();
    return t;
  }

 private:
  std::array<CounterCell, kMetricShards> cells_{};
};

// Point-in-time value (table sizes, worker counts). Set from the control
// plane; last writer wins, which is the right semantics for configuration
// gauges. Stored as the bit pattern of a double so reads are tear-free.
class Gauge {
 public:
  void set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }

  void add(double d) {
    std::uint64_t old = bits_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t desired =
          std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + d);
      if (bits_.compare_exchange_weak(old, desired,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

// Log-bucketed histogram geometry: bucket i counts observations v with
// v <= 2^i (cumulative rendering happens at export time); the last bucket is
// +Inf. Powers of two keep bucketFor() at one bit_width instruction — cheap
// enough for the per-lookup access-count and nanosecond-latency paths — and
// give the exporters exact integer `le` bounds.
inline constexpr std::size_t kHistogramBuckets = 32;  // le 2^0 .. 2^30, +Inf

constexpr std::size_t histogramBucketFor(std::uint64_t v) {
  if (v <= 1) return 0;
  const auto b = static_cast<std::size_t>(std::bit_width(v - 1));
  return b < kHistogramBuckets - 1 ? b : kHistogramBuckets - 1;
}

// Upper bound of bucket i; the last bucket is +Inf (returned as the max
// uint64 sentinel — exporters print "+Inf").
constexpr std::uint64_t histogramBucketBound(std::size_t i) {
  if (i >= kHistogramBuckets - 1) return ~std::uint64_t{0};
  return std::uint64_t{1} << i;
}

// One shard of a histogram. ~300 bytes; the padding keeps shard boundaries
// off shared lines.
struct alignas(kCacheLineBytes) HistogramCell {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> counts{};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> count{0};

  void observe(std::uint64_t v) {
    counts[histogramBucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(v, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
  }
};

// Aggregated histogram contents (snapshot vocabulary; no atomics).
struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets> counts{};  // per-bucket
  std::uint64_t sum = 0;
  std::uint64_t count = 0;

  // Cumulative count of observations <= histogramBucketBound(i).
  std::uint64_t cumulative(std::size_t i) const {
    std::uint64_t t = 0;
    for (std::size_t b = 0; b <= i && b < kHistogramBuckets; ++b) {
      t += counts[b];
    }
    return t;
  }
};

class Histogram {
 public:
  HistogramCell& shard(std::size_t s) { return cells_[s % kMetricShards]; }

  void observe(std::uint64_t v) { cells_[0].observe(v); }

  HistogramData data() const {
    HistogramData d;
    for (const auto& c : cells_) {
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        d.counts[b] += c.counts[b].load(std::memory_order_relaxed);
      }
      d.sum += c.sum.load(std::memory_order_relaxed);
      d.count += c.count.load(std::memory_order_relaxed);
    }
    return d;
  }

 private:
  std::array<HistogramCell, kMetricShards> cells_{};
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum class MetricKind { kCounter, kGauge, kHistogram };

// Label set, kept sorted by key so (name, labels) identity is canonical.
using Labels = std::vector<std::pair<std::string, std::string>>;

struct MetricDesc {
  std::string name;
  std::string help;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
};

// One aggregated reading: the union of the three instrument shapes.
struct MetricSample {
  MetricDesc desc;
  std::uint64_t counter_value = 0;  // kCounter
  double gauge_value = 0.0;         // kGauge
  HistogramData hist;               // kHistogram
};

struct MetricSnapshot {
  std::vector<MetricSample> samples;

  // The counter/gauge value of the series with this name and labels, or
  // nullopt. Convenience for tests and the bench summary prints.
  const MetricSample* find(std::string_view name,
                           const Labels& labels = {}) const;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Idempotent: the same (name, labels) returns the same instrument (the
  // help string of the first registration wins). Registering the same name
  // with a different kind aborts — that is a programming error that would
  // corrupt the exposition.
  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       Labels labels = {});

  // Aggregates every instrument across its shards. Safe to call while
  // workers are still incrementing (relaxed reads; values are tear-free but
  // may trail in-flight increments).
  MetricSnapshot snapshot() const CLUERT_EXCLUDES(mu_);

  std::size_t size() const CLUERT_EXCLUDES(mu_);

 private:
  struct Entry {
    MetricDesc desc;
    // Exactly one of these is set, per desc.kind. unique_ptr keeps
    // instrument addresses stable as entries_ grows.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& findOrCreate(std::string_view name, std::string_view help,
                      Labels labels, MetricKind kind) CLUERT_EXCLUDES(mu_);

  mutable sync::Mutex mu_;
  // The dedup map: guarded registration, stable instrument addresses.
  std::vector<Entry> entries_ CLUERT_GUARDED_BY(mu_);
};

}  // namespace cluert::obs
