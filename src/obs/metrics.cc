#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace cluert::obs {

namespace {

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

const MetricSample* MetricSnapshot::find(std::string_view name,
                                         const Labels& labels) const {
  const Labels want = canonical(labels);
  for (const MetricSample& s : samples) {
    if (s.desc.name == name && s.desc.labels == want) return &s;
  }
  return nullptr;
}

MetricRegistry::Entry& MetricRegistry::findOrCreate(std::string_view name,
                                                    std::string_view help,
                                                    Labels labels,
                                                    MetricKind kind) {
  labels = canonical(std::move(labels));
  sync::MutexLock lock(mu_);
  for (Entry& e : entries_) {
    if (e.desc.name == name && e.desc.labels == labels) {
      CLUERT_CHECK(e.desc.kind == kind)
          << "metric '" << e.desc.name
          << "' re-registered as a different instrument kind";
      return e;
    }
  }
  Entry e;
  e.desc.name = std::string(name);
  e.desc.help = std::string(help);
  e.desc.labels = std::move(labels);
  e.desc.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      e.histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(e));
  return entries_.back();
}

Counter& MetricRegistry::counter(std::string_view name, std::string_view help,
                                 Labels labels) {
  return *findOrCreate(name, help, std::move(labels), MetricKind::kCounter)
              .counter;
}

Gauge& MetricRegistry::gauge(std::string_view name, std::string_view help,
                             Labels labels) {
  return *findOrCreate(name, help, std::move(labels), MetricKind::kGauge)
              .gauge;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::string_view help, Labels labels) {
  return *findOrCreate(name, help, std::move(labels), MetricKind::kHistogram)
              .histogram;
}

MetricSnapshot MetricRegistry::snapshot() const {
  MetricSnapshot snap;
  sync::MutexLock lock(mu_);
  snap.samples.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSample s;
    s.desc = e.desc;
    switch (e.desc.kind) {
      case MetricKind::kCounter:
        s.counter_value = e.counter->value();
        break;
      case MetricKind::kGauge:
        s.gauge_value = e.gauge->value();
        break;
      case MetricKind::kHistogram:
        s.hist = e.histogram->data();
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  // Exposition order: stable by (name, labels) so snapshots diff cleanly.
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.desc.name != b.desc.name) return a.desc.name < b.desc.name;
              return a.desc.labels < b.desc.labels;
            });
  return snap;
}

std::size_t MetricRegistry::size() const {
  sync::MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace cluert::obs
