#include "obs/hooks.h"

namespace cluert::obs {

namespace {

Labels withExtra(Labels base, const Labels& extra) {
  base.insert(base.end(), extra.begin(), extra.end());
  return base;
}

}  // namespace

LookupObs LookupObs::bind(MetricRegistry& reg, std::size_t shard,
                          Tracer* tracer, const Labels& extra) {
  LookupObs o;
  o.shard = shard;
  o.tracer = tracer;
  o.packets = &reg.counter("lookup_packets_total",
                           "Packets resolved by the clue-assisted fast path",
                           extra)
                   .shard(shard);
  for (std::size_t c = 0; c < kOutcomeCount; ++c) {
    o.cases[c] =
        &reg.counter(
                "lookup_case_total",
                "Lookup outcomes by paper case (1/2/3) plus miss and no_clue",
                withExtra({{"case", std::string(
                                        outcomeName(static_cast<Outcome>(c)))}},
                          extra))
             .shard(shard);
  }
  o.claim1_skip =
      &reg.counter("lookup_claim1_skip_total",
                   "Case-2 resolutions where Claim 1 (not a leaf clue) "
                   "emptied the candidate set",
                   extra)
           .shard(shard);
  o.search_failed =
      &reg.counter("lookup_search_failed_total",
                   "Case-3 continuations that fell back to the FD", extra)
           .shard(shard);
  o.accesses = &reg.histogram("lookup_accesses",
                              "Dependent memory accesses per lookup (the §6 "
                              "unit of cost)",
                              extra);
  o.latency_ns = &reg.histogram(
      "lookup_latency_ns", "Wall-clock nanoseconds per sampled lookup",
      extra);
  return o;
}

WorkerObs WorkerObs::bind(MetricRegistry& reg, std::size_t shard,
                          const Labels& extra) {
  WorkerObs o;
  o.packets = &reg.counter("pipeline_packets_total",
                           "Packets forwarded by the pipeline shards", extra)
                   .shard(shard);
  o.batches = &reg.counter("pipeline_batches_total",
                           "Batches consumed by the pipeline shards", extra)
                   .shard(shard);
  return o;
}

ChurnObs ChurnObs::bind(MetricRegistry& reg, std::size_t shard,
                        const Labels& extra) {
  ChurnObs o;
  o.shard = shard;
  o.swaps = &reg.counter("rib_version_swaps_total",
                         "Table versions published (atomic live-pointer swaps)",
                         extra)
                 .shard(shard);
  o.full_rebuilds =
      &reg.counter("rib_version_full_rebuilds_total",
                   "Publishes that fell back to a full table rebuild because "
                   "the delta exceeded the churn threshold",
                   extra)
           .shard(shard);
  o.retired_validated =
      &reg.counter("rib_version_retired_validated_total",
                   "Retired versions run through check::validate before reuse",
                   extra)
           .shard(shard);
  o.live_seq = &reg.gauge("rib_version_live_seq",
                          "Sequence number of the currently live table version",
                          extra);
  o.apply_ns = &reg.histogram(
      "rib_version_apply_ns",
      "Nanoseconds building the next version (delta apply or full rebuild)",
      extra);
  o.grace_ns = &reg.histogram(
      "rib_version_grace_ns",
      "Nanoseconds waiting for readers to drain the retired version", extra);
  return o;
}

NetioObs NetioObs::bind(MetricRegistry& reg, std::size_t shard,
                        const Labels& extra) {
  NetioObs o;
  o.shard = shard;
  o.rx_packets = &reg.counter("netio_rx_packets_total",
                              "Clue-tagged datagrams that decoded cleanly",
                              extra)
                      .shard(shard);
  o.rx_bytes =
      &reg.counter("netio_rx_bytes_total",
                   "Bytes of cleanly decoded ingress datagrams", extra)
           .shard(shard);
  o.tx_packets = &reg.counter("netio_tx_packets_total",
                              "Datagrams re-emitted toward a next-hop peer",
                              extra)
                      .shard(shard);
  o.tx_bytes = &reg.counter("netio_tx_bytes_total",
                            "Bytes of egress datagrams", extra)
                    .shard(shard);
  o.delivered =
      &reg.counter("netio_delivered_total",
                   "Packets routed to a next hop with no configured peer "
                   "(this router is their last clue-speaking hop)",
                   extra)
           .shard(shard);
  o.decode_errors =
      &reg.counter("netio_decode_errors_total",
                   "Ingress datagrams rejected by the wire codec", extra)
           .shard(shard);
  o.no_route = &reg.counter("netio_no_route_total",
                            "Packets dropped because the lookup found no BMP",
                            extra)
                    .shard(shard);
  o.ttl_expired = &reg.counter("netio_ttl_expired_total",
                               "Packets dropped on TTL reaching zero", extra)
                       .shard(shard);
  o.send_errors =
      &reg.counter("netio_send_errors_total",
                   "Egress datagrams the kernel refused (sendmsg failure)",
                   extra)
           .shard(shard);
  o.oracle_mismatch =
      &reg.counter("netio_oracle_mismatch_total",
                   "Differential-oracle disagreements: the clue-assisted "
                   "result differed from the plain engine BMP at the pinned "
                   "version",
                   extra)
           .shard(shard);
  return o;
}

void publishAccessCounter(MetricRegistry& reg,
                          const mem::AccessCounter& counter,
                          const Labels& extra) {
  counter.forEachNonZero([&](mem::Region r, std::uint64_t n) {
    reg.counter("mem_accesses_total",
                "Dependent memory references by region (the paper's access "
                "accounting)",
                withExtra({{"region", std::string(mem::regionName(r))}},
                          extra))
        .inc(n);
  });
}

}  // namespace cluert::obs
