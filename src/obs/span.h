// Per-hop span model for distributed tracing (DESIGN.md §11): one
// PacketSpan records everything a traced packet did at one router — the
// rx/decode/lookup/tx phase timestamps, the §3.1.2 case attribution and
// per-mem::Region access deltas of its lookup, and how the forwarding pass
// settled it. The daemon's /trace admin endpoint drains collectors to JSONL
// (obs::spansToJsonl); tools/trace_merge.py joins the per-router streams on
// the 128-bit trace id into one chrome://tracing timeline.
//
// Unlike obs::Tracer (single-owner ring drained post-quiesce), a
// SpanCollector must hand spans from a live datapath thread to the admin
// thread, so it is a small mutex-guarded ring. That is deliberate: spans
// exist only for sampled packets (1-in-N at the ingress), so the lock is
// off the per-packet hot path entirely — the always-on O(ns) path is the
// flight recorder (obs/flight.h), not this.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "mem/access_counter.h"
#include "obs/trace.h"

namespace cluert::obs {

// How the forwarding pass settled a traced packet at this hop.
enum class SpanVerdict : std::uint8_t {
  kForwarded = 0,  // re-encoded toward a peer (trace context hop+1)
  kDelivered,      // routed, no peer: this router is the last clue hop
  kNoRoute,
  kTtlExpired,
  kSendError,
};

std::string_view spanVerdictName(SpanVerdict v);

struct PacketSpan {
  // Identity: the wire trace context as seen at this hop (hop 0 = the
  // ingress daemon that sampled the packet).
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t origin_ns = 0;
  std::uint8_t hop = 0;

  std::uint16_t router_id = 0;
  std::uint32_t worker = 0;
  std::uint32_t dest = 0;       // IPv4 destination, host order
  std::uint16_t src_id = 0;     // upstream router id off the wire

  // Phase timestamps, steady clock. rx/decode are batch-level (one recvmmsg
  // round); the lookup pair brackets THIS packet's resolve.
  std::uint64_t rx_ns = 0;
  std::uint64_t decode_ns = 0;
  std::uint64_t lookup_start_ns = 0;
  std::uint64_t lookup_end_ns = 0;
  std::uint64_t tx_ns = 0;      // 0 unless verdict == kForwarded

  // Lookup attribution, same vocabulary as TraceEvent.
  std::int16_t clue_len = -1;
  Outcome outcome = Outcome::kNoClue;
  bool claim1_skip = false;
  bool search_failed = false;
  std::array<std::uint16_t, mem::AccessCounter::kRegions> accesses{};
  SpanVerdict verdict = SpanVerdict::kForwarded;

  std::uint32_t accessTotal() const {
    std::uint32_t t = 0;
    for (const auto a : accesses) t += a;
    return t;
  }
};

// Bounded hand-off ring between one datapath shard and the admin thread.
// Overwrites the oldest span when full (the newest evidence wins, like
// every other ring here); drain() empties it.
class SpanCollector {
 public:
  explicit SpanCollector(std::size_t capacity = 2048);

  void record(const PacketSpan& s);
  std::vector<PacketSpan> drain();

  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

 private:
  mutable sync::Mutex mu_;
  std::vector<PacketSpan> ring_ CLUERT_GUARDED_BY(mu_);
  std::size_t capacity_ CLUERT_GUARDED_BY(mu_);
  std::size_t head_ CLUERT_GUARDED_BY(mu_) = 0;  // oldest when full
  bool full_ CLUERT_GUARDED_BY(mu_) = false;
  std::uint64_t recorded_ CLUERT_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ CLUERT_GUARDED_BY(mu_) = 0;
};

}  // namespace cluert::obs
