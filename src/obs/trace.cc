#include "obs/trace.h"

#include <chrono>

namespace cluert::obs {

std::string_view outcomeName(Outcome o) {
  switch (o) {
    case Outcome::kNoClue:
      return "no_clue";
    case Outcome::kMiss:
      return "miss";
    case Outcome::kCase1:
      return "1";
    case Outcome::kCase2:
      return "2";
    case Outcome::kCase3:
      return "3";
  }
  return "unknown";
}

Tracer::Tracer(const TraceOptions& options, std::uint64_t seed,
               std::uint32_t worker)
    : options_(options), worker_(worker) {
  if (options_.sample_every == 0) options_.sample_every = 1;
  if (options_.event_capacity == 0) options_.event_capacity = 1;
  if (options_.span_capacity == 0) options_.span_capacity = 1;
  // Deterministic per-(seed, worker) phase in [1, sample_every]: the k-th
  // sampled call is phase + k * sample_every for every run with the same
  // inputs, and distinct workers start at distinct phases.
  Rng rng = Rng::forThread(seed, worker);
  next_ = 1 + rng.uniform(0, options_.sample_every - 1);
  if (options_.enabled) {
    ring_.reserve(options_.event_capacity);
    span_ring_.reserve(options_.span_capacity);
  }
}

void Tracer::record(const TraceEvent& e) {
  if (ring_.size() < options_.event_capacity) {
    ring_.push_back(e);
    return;
  }
  ring_full_ = true;
  ++events_dropped_;
  ring_[ring_head_] = e;
  ring_head_ = (ring_head_ + 1) % ring_.size();
}

void Tracer::span(const SpanEvent& s) {
  if (span_ring_.size() < options_.span_capacity) {
    span_ring_.push_back(s);
    return;
  }
  span_full_ = true;
  ++spans_dropped_;
  span_ring_[span_head_] = s;
  span_head_ = (span_head_ + 1) % span_ring_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (!ring_full_) {
    out = ring_;
    return out;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<SpanEvent> Tracer::spans() const {
  std::vector<SpanEvent> out;
  out.reserve(span_ring_.size());
  if (!span_full_) {
    out = span_ring_;
    return out;
  }
  for (std::size_t i = 0; i < span_ring_.size(); ++i) {
    out.push_back(span_ring_[(span_head_ + i) % span_ring_.size()]);
  }
  return out;
}

std::uint64_t Tracer::nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace cluert::obs
