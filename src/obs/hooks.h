// Pre-bound instrument bundles for the data plane.
//
// Hot-path code must not pay a name lookup (or the registry mutex) per
// packet, so instrumented classes hold one of these bundles instead of a
// MetricRegistry: bind() resolves the named instruments once on the control
// plane and stores raw pointers to *this worker's* shard cells. A
// default-constructed bundle is inert — every hook first tests one pointer,
// which is the entire per-packet cost of having observability compiled in
// but disabled.
//
// Metric names are fixed here so every producer (CluePort, Worker, Router,
// benches) feeds the same series and DESIGN.md can map them to the paper's
// §6 tables.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cluert::obs {

// Per-worker view of the lookup-path metrics, fed by CluePort on every
// packet it resolves.
struct LookupObs {
  CounterCell* packets = nullptr;
  // One cell per Outcome, indexed by static_cast<size_t>(Outcome): the
  // lookup_case_total{case=...} family. Summed over cases it equals
  // lookup_packets_total — the invariant obs_test and the example check.
  std::array<CounterCell*, kOutcomeCount> cases{};
  CounterCell* claim1_skip = nullptr;
  CounterCell* search_failed = nullptr;
  Histogram* accesses = nullptr;     // per-lookup total access delta
  Histogram* latency_ns = nullptr;   // sampled lookups only (trace builds)
  std::size_t shard = 0;
  Tracer* tracer = nullptr;  // optional; owned elsewhere (the worker)

  bool metricsEnabled() const { return packets != nullptr; }

  // True when this lookup should also produce a TraceEvent. Folds to false
  // at compile time when CLUERT_TRACE is off.
  bool traceArmed() const {
    if constexpr (!kTraceCompiled) return false;
    return tracer != nullptr && tracer->enabled();
  }

  // Resolves the instruments in `reg`, pinning this bundle to `shard`.
  // `extra` labels distinguish co-hosted producers (e.g. {"router", "2"});
  // the same labels must be used when reading the series back.
  static LookupObs bind(MetricRegistry& reg, std::size_t shard,
                        Tracer* tracer = nullptr, const Labels& extra = {});
};

// Per-worker pipeline-level counters, fed by Worker once per batch.
struct WorkerObs {
  CounterCell* packets = nullptr;
  CounterCell* batches = nullptr;

  bool enabled() const { return packets != nullptr; }

  static WorkerObs bind(MetricRegistry& reg, std::size_t shard,
                        const Labels& extra = {});
};

// Control-plane instruments for the epoch-versioned publication scheme
// (rib::VersionedTables). All cells live on the updater thread's shard:
// publication is single-threaded by design, so no per-worker sharding is
// needed — but the bundle keeps the bind-once discipline so the swap path
// never takes the registry mutex.
struct ChurnObs {
  CounterCell* swaps = nullptr;          // versions published
  CounterCell* full_rebuilds = nullptr;  // publishes past the churn threshold
  CounterCell* retired_validated = nullptr;  // check::validate runs (debug)
  Gauge* live_seq = nullptr;             // sequence number of the live version
  Histogram* apply_ns = nullptr;         // delta apply + build, per publish
  Histogram* grace_ns = nullptr;         // grace-period wait, per publish
  std::size_t shard = 0;

  bool enabled() const { return swaps != nullptr; }

  static ChurnObs bind(MetricRegistry& reg, std::size_t shard = 0,
                       const Labels& extra = {});
};

// Per-datapath-shard counters for the wire daemon (src/netio/): datagram
// ingress/egress, the decode/drop taxonomy, and the differential-oracle
// mismatch count. Per-peer breakouts (netio_peer_{rx,tx}_packets_total,
// labelled by the wire header's source id on rx and by the configured
// next-hop peer on tx) are bound by the datapath itself — the peer set is
// config-dependent, so the bundle cannot fix it here.
struct NetioObs {
  CounterCell* rx_packets = nullptr;   // datagrams that decoded cleanly
  CounterCell* rx_bytes = nullptr;
  CounterCell* tx_packets = nullptr;   // datagrams re-emitted toward a peer
  CounterCell* tx_bytes = nullptr;
  CounterCell* delivered = nullptr;    // routed, but no peer: this hop sinks
  CounterCell* decode_errors = nullptr;
  CounterCell* no_route = nullptr;     // lookup found no BMP
  CounterCell* ttl_expired = nullptr;
  CounterCell* send_errors = nullptr;
  CounterCell* oracle_mismatch = nullptr;  // port result != engine BMP
  std::size_t shard = 0;

  bool enabled() const { return rx_packets != nullptr; }

  static NetioObs bind(MetricRegistry& reg, std::size_t shard,
                       const Labels& extra = {});
};

// Publishes a quiesced AccessCounter into the mem_accesses_total{region=...}
// family (control-plane: called after the pipeline joined, or by
// single-threaded drivers at end of run).
void publishAccessCounter(MetricRegistry& reg,
                          const mem::AccessCounter& counter,
                          const Labels& extra = {});

}  // namespace cluert::obs
