#include "obs/flight.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <sstream>

namespace cluert::obs {

namespace {

std::uint64_t steadyNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint16_t packMeta(FlightKind kind, std::uint8_t worker) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(kind) |
                                    (std::uint16_t{worker} << 8));
}

// Unsigned decimal into `buf`, returning the digit count. No allocation, no
// locale, no errno: usable from a signal handler.
std::size_t formatU64(std::uint64_t v, char* buf) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

void writeAll(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0) return;  // a failed dump must not loop in a signal handler
    p += static_cast<std::size_t>(w);
    n -= static_cast<std::size_t>(w);
  }
}

// The global the fatal-signal handler reads; plain atomic pointer so the
// handler's load is async-signal-safe.
std::atomic<FlightRecorder*> g_recorder{nullptr};

}  // namespace

std::string_view flightKindName(FlightKind k) {
  switch (k) {
    case FlightKind::kNone:
      return "none";
    case FlightKind::kRxBatch:
      return "rx_batch";
    case FlightKind::kDecodeReject:
      return "decode_reject";
    case FlightKind::kNoRoute:
      return "no_route";
    case FlightKind::kTtlExpired:
      return "ttl_expired";
    case FlightKind::kSendError:
      return "send_error";
    case FlightKind::kTraceStart:
      return "trace_start";
    case FlightKind::kPublish:
      return "publish";
    case FlightKind::kReload:
      return "reload";
    case FlightKind::kSignal:
      return "signal";
    case FlightKind::kDrain:
      return "drain";
    case FlightKind::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

void FlightRing::push(FlightKind kind, std::uint64_t a, std::uint64_t b) {
  pushAt(steadyNs(), kind, a, b);
}

void FlightRing::pushAt(std::uint64_t ns, FlightKind kind, std::uint64_t a,
                        std::uint64_t b) {
  const std::uint64_t i = n_.load(std::memory_order_relaxed);
  Slot& s = slots_[i & (kCapacity - 1)];
  s.ns.store(ns, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.meta.store(packMeta(kind, worker_), std::memory_order_relaxed);
  // Release-publish: a reader that acquires n_ >= i+1 sees this slot's
  // fields. (Single writer, so the relaxed read-modify of n_ above is the
  // only producer of i.)
  n_.store(i + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRing::snapshot() const {
  const std::uint64_t n0 = n_.load(std::memory_order_acquire);
  const std::uint64_t first = n0 > kCapacity ? n0 - kCapacity : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(n0 - first));
  for (std::uint64_t i = first; i < n0; ++i) {
    const Slot& s = slots_[i & (kCapacity - 1)];
    FlightEvent e;
    e.ns = s.ns.load(std::memory_order_relaxed);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    const std::uint16_t meta = s.meta.load(std::memory_order_relaxed);
    e.kind = static_cast<FlightKind>(meta & 0xff);
    e.worker = static_cast<std::uint8_t>(meta >> 8);
    out.push_back(e);
  }
  // Anything the writer lapped while we copied may be torn — drop it. The
  // writer may also be MID-push of event n1 right now (slot fields stored,
  // count not yet published), and that slot is shared with event index
  // n1 - kCapacity, so index n1 - kCapacity itself must go too: only
  // indices strictly above it are provably untouched. The acquire pairs
  // with the writer's release, so everything kept is whole.
  const std::uint64_t n1 = n_.load(std::memory_order_acquire);
  const std::uint64_t valid_first =
      n1 >= kCapacity ? n1 - kCapacity + 1 : 0;
  if (valid_first > first) {
    out.erase(out.begin(),
              out.begin() + static_cast<std::ptrdiff_t>(
                                std::min(valid_first - first, n0 - first)));
  }
  return out;
}

void FlightRing::dumpTo(int fd) const {
  const std::uint64_t n0 = n_.load(std::memory_order_acquire);
  const std::uint64_t first = n0 > kCapacity ? n0 - kCapacity : 0;
  for (std::uint64_t i = first; i < n0; ++i) {
    const Slot& s = slots_[i & (kCapacity - 1)];
    const std::uint64_t ns = s.ns.load(std::memory_order_relaxed);
    const std::uint64_t a = s.a.load(std::memory_order_relaxed);
    const std::uint64_t b = s.b.load(std::memory_order_relaxed);
    const std::uint16_t meta = s.meta.load(std::memory_order_relaxed);
    const FlightKind kind = static_cast<FlightKind>(meta & 0xff);
    const std::uint8_t worker = static_cast<std::uint8_t>(meta >> 8);

    char line[128];
    std::size_t p = 0;
    const char prefix[] = "flight ";
    for (const char c : std::string_view(prefix)) line[p++] = c;
    p += formatU64(worker, line + p);
    line[p++] = ' ';
    p += formatU64(ns, line + p);
    line[p++] = ' ';
    const std::string_view name = flightKindName(kind);
    for (const char c : name) line[p++] = c;
    line[p++] = ' ';
    p += formatU64(a, line + p);
    line[p++] = ' ';
    p += formatU64(b, line + p);
    line[p++] = '\n';
    writeAll(fd, line, p);
  }
}

FlightRecorder::FlightRecorder(std::size_t rings) {
  rings_.reserve(rings);
  for (std::size_t i = 0; i < rings; ++i) {
    rings_.push_back(std::make_unique<FlightRing>());
    rings_.back()->setWorker(static_cast<std::uint8_t>(i));
  }
}

std::string FlightRecorder::toJson(std::string_view name) const {
  std::ostringstream out;
  out << "{\"router\":\"" << name << "\",\"rings\":[";
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    if (r > 0) out << ",";
    const auto events = rings_[r]->snapshot();
    out << "{\"worker\":" << static_cast<unsigned>(rings_[r]->worker())
        << ",\"recorded\":" << rings_[r]->count() << ",\"events\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (i > 0) out << ",";
      const FlightEvent& e = events[i];
      out << "{\"ns\":" << e.ns << ",\"kind\":\"" << flightKindName(e.kind)
          << "\",\"a\":" << e.a << ",\"b\":" << e.b << "}";
    }
    out << "]}";
  }
  out << "]}\n";
  return out.str();
}

void FlightRecorder::dumpTo(int fd) const {
  const char head[] = "=== flight recorder dump ===\n";
  writeAll(fd, head, sizeof(head) - 1);
  for (const auto& ring : rings_) ring->dumpTo(fd);
  const char tail[] = "=== end flight recorder dump ===\n";
  writeAll(fd, tail, sizeof(tail) - 1);
}

void FlightRecorder::installGlobal(FlightRecorder* r) {
  g_recorder.store(r, std::memory_order_release);
}

FlightRecorder* FlightRecorder::global() {
  return g_recorder.load(std::memory_order_acquire);
}

}  // namespace cluert::obs
