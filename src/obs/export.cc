#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace cluert::obs {

namespace {

// Prometheus label values escape backslash, double quote and newline.
std::string escapeLabel(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// {a="x",b="y"} with an optional extra label appended (histogram `le`).
std::string labelBlock(const Labels& labels, const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escapeLabel(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

const char* kindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string fmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Microseconds with nanosecond precision, the chrome-trace time unit.
std::string fmtUs(std::uint64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  return buf;
}

std::uint64_t traceEpoch(std::span<const TraceEvent> events,
                         std::span<const SpanEvent> spans) {
  std::uint64_t epoch = ~std::uint64_t{0};
  for (const auto& e : events) epoch = std::min(epoch, e.start_ns);
  for (const auto& s : spans) epoch = std::min(epoch, s.start_ns);
  return epoch == ~std::uint64_t{0} ? 0 : epoch;
}

}  // namespace

std::string toPrometheus(const MetricSnapshot& snapshot) {
  std::ostringstream out;
  std::string last_family;
  for (const MetricSample& s : snapshot.samples) {
    if (s.desc.name != last_family) {
      last_family = s.desc.name;
      out << "# HELP " << s.desc.name << " " << s.desc.help << "\n";
      out << "# TYPE " << s.desc.name << " " << kindName(s.desc.kind) << "\n";
    }
    switch (s.desc.kind) {
      case MetricKind::kCounter:
        out << s.desc.name << labelBlock(s.desc.labels) << " "
            << s.counter_value << "\n";
        break;
      case MetricKind::kGauge:
        out << s.desc.name << labelBlock(s.desc.labels) << " "
            << fmtDouble(s.gauge_value) << "\n";
        break;
      case MetricKind::kHistogram: {
        // Buckets are cumulative and sparse-rendered: every non-empty bucket
        // plus +Inf, which Prometheus requires and which always equals
        // _count.
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          cum += s.hist.counts[b];
          if (s.hist.counts[b] == 0 && b + 1 < kHistogramBuckets) continue;
          const std::string le =
              b + 1 < kHistogramBuckets
                  ? std::to_string(histogramBucketBound(b))
                  : "+Inf";
          out << s.desc.name << "_bucket"
              << labelBlock(s.desc.labels, "le", le) << " " << cum << "\n";
        }
        out << s.desc.name << "_sum" << labelBlock(s.desc.labels) << " "
            << s.hist.sum << "\n";
        out << s.desc.name << "_count" << labelBlock(s.desc.labels) << " "
            << s.hist.count << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string toJsonl(std::span<const TraceEvent> events) {
  std::ostringstream out;
  for (const TraceEvent& e : events) {
    out << "{\"start_ns\":" << e.start_ns << ",\"dur_ns\":" << e.dur_ns
        << ",\"worker\":" << e.worker
        << ",\"clue_len\":" << static_cast<int>(e.clue_len)
        << ",\"mode\":" << static_cast<int>(e.mode) << ",\"outcome\":\""
        << outcomeName(e.outcome) << "\",\"claim1_skip\":"
        << (e.claim1_skip ? "true" : "false") << ",\"search_failed\":"
        << (e.search_failed ? "true" : "false") << ",\"accesses\":{";
    bool first = true;
    for (std::size_t r = 0; r < e.accesses.size(); ++r) {
      if (e.accesses[r] == 0) continue;
      if (!first) out << ",";
      first = false;
      out << "\"" << mem::regionName(static_cast<mem::Region>(r)) << "\":"
          << e.accesses[r];
    }
    out << "},\"total_accesses\":" << e.accessTotal() << "}\n";
  }
  return out.str();
}

std::string spansToJsonl(std::span<const PacketSpan> spans,
                         const std::string& router) {
  std::ostringstream out;
  for (const PacketSpan& s : spans) {
    char id[33];
    std::snprintf(id, sizeof(id), "%016" PRIx64 "%016" PRIx64, s.trace_hi,
                  s.trace_lo);
    char dest[16];
    std::snprintf(dest, sizeof(dest), "%u.%u.%u.%u", (s.dest >> 24) & 0xff,
                  (s.dest >> 16) & 0xff, (s.dest >> 8) & 0xff, s.dest & 0xff);
    out << "{\"trace_id\":\"" << id << "\",\"hop\":"
        << static_cast<unsigned>(s.hop) << ",\"router\":\"" << router
        << "\",\"router_id\":" << s.router_id << ",\"worker\":" << s.worker
        << ",\"src_id\":" << s.src_id << ",\"dest\":\"" << dest
        << "\",\"origin_ns\":" << s.origin_ns << ",\"rx_ns\":" << s.rx_ns
        << ",\"decode_ns\":" << s.decode_ns
        << ",\"lookup_start_ns\":" << s.lookup_start_ns
        << ",\"lookup_end_ns\":" << s.lookup_end_ns
        << ",\"tx_ns\":" << s.tx_ns
        << ",\"clue_len\":" << static_cast<int>(s.clue_len)
        << ",\"outcome\":\"" << outcomeName(s.outcome)
        << "\",\"claim1_skip\":" << (s.claim1_skip ? "true" : "false")
        << ",\"search_failed\":" << (s.search_failed ? "true" : "false")
        << ",\"verdict\":\"" << spanVerdictName(s.verdict)
        << "\",\"accesses\":{";
    bool first = true;
    for (std::size_t r = 0; r < s.accesses.size(); ++r) {
      if (s.accesses[r] == 0) continue;
      if (!first) out << ",";
      first = false;
      out << "\"" << mem::regionName(static_cast<mem::Region>(r)) << "\":"
          << s.accesses[r];
    }
    out << "},\"total_accesses\":" << s.accessTotal() << "}\n";
  }
  return out.str();
}

std::string toChromeTrace(std::span<const TraceEvent> events,
                          std::span<const SpanEvent> spans,
                          const std::string& process_name) {
  // Normalise to the earliest timestamp so the UI timeline starts at ~0.
  const std::uint64_t epoch = traceEpoch(events, spans);

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) out << ",\n";
    first = false;
    out << line;
  };

  emit("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"" +
       process_name + "\"}}");
  std::vector<std::uint32_t> named_workers;
  const auto nameWorker = [&](std::uint32_t w) {
    for (const auto n : named_workers) {
      if (n == w) return;
    }
    named_workers.push_back(w);
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(w) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker " +
         std::to_string(w) + "\"}}");
  };

  for (const SpanEvent& s : spans) {
    nameWorker(s.worker);
    emit("{\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(s.worker) +
         ",\"ts\":" + fmtUs(s.start_ns - epoch) +
         ",\"dur\":" + fmtUs(s.dur_ns) + ",\"name\":\"batch\",\"cat\":\""
         "pipeline\",\"args\":{\"packets\":" +
         std::to_string(s.packets) + "}}");
  }
  for (const TraceEvent& e : events) {
    nameWorker(e.worker);
    emit("{\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(e.worker) +
         ",\"ts\":" + fmtUs(e.start_ns - epoch) +
         ",\"dur\":" + fmtUs(e.dur_ns) +
         ",\"name\":\"lookup case " +
         std::string(outcomeName(e.outcome)) + "\",\"cat\":\"lookup\","
         "\"args\":{\"outcome\":\"" +
         std::string(outcomeName(e.outcome)) +
         "\",\"clue_len\":" + std::to_string(e.clue_len) +
         ",\"accesses\":" + std::to_string(e.accessTotal()) +
         ",\"claim1_skip\":" + (e.claim1_skip ? "true" : "false") +
         ",\"search_failed\":" + (e.search_failed ? "true" : "false") + "}}");
  }
  out << "\n]}\n";
  return out.str();
}

bool writeFile(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << content;
  return static_cast<bool>(f);
}

}  // namespace cluert::obs
