#include "rib/table_gen.h"

#include <algorithm>

namespace cluert::rib {

LengthHistogram<32> internetLengths1999() {
  LengthHistogram<32> h;
  h.weight[8] = 0.6;
  h.weight[12] = 0.4;
  h.weight[13] = 0.6;
  h.weight[14] = 1.2;
  h.weight[15] = 1.4;
  h.weight[16] = 12.0;
  h.weight[17] = 2.5;
  h.weight[18] = 4.0;
  h.weight[19] = 6.0;
  h.weight[20] = 4.0;
  h.weight[21] = 4.0;
  h.weight[22] = 5.0;
  h.weight[23] = 7.0;
  h.weight[24] = 48.0;
  h.weight[25] = 1.2;
  h.weight[26] = 1.0;
  h.weight[27] = 0.6;
  h.weight[28] = 0.3;
  h.weight[29] = 0.15;
  h.weight[30] = 0.05;
  return h;
}

LengthHistogram<128> internetLengths6() {
  LengthHistogram<128> h;
  h.weight[16] = 0.3;
  h.weight[24] = 0.7;
  h.weight[32] = 8.0;
  h.weight[36] = 2.0;
  h.weight[40] = 4.0;
  h.weight[44] = 3.0;
  h.weight[48] = 45.0;
  h.weight[52] = 3.0;
  h.weight[56] = 8.0;
  h.weight[60] = 4.0;
  h.weight[64] = 20.0;
  return h;
}

namespace {

template <typename A>
A drawAddress(Rng& rng);

template <>
ip::Ip4Addr drawAddress<ip::Ip4Addr>(Rng& rng) {
  return ip::Ip4Addr(rng.u32());
}

template <>
ip::Ip6Addr drawAddress<ip::Ip6Addr>(Rng& rng) {
  return ip::Ip6Addr(rng.u64(), rng.u64());
}

template <int W>
std::vector<double> weightsOf(const LengthHistogram<W>& h) {
  return std::vector<double>(h.weight.begin(), h.weight.end());
}

template <typename A>
LengthHistogram<A::kBits> defaultHistogram();

template <>
LengthHistogram<32> defaultHistogram<ip::Ip4Addr>() {
  return internetLengths1999();
}

template <>
LengthHistogram<128> defaultHistogram<ip::Ip6Addr>() {
  return internetLengths6();
}

}  // namespace

template <typename A>
typename TableGen<A>::PrefixT TableGen<A>::randomPrefix(
    Rng& rng, const LengthHistogram<A::kBits>& hist) {
  const auto weights = weightsOf(hist);
  const int len = static_cast<int>(rng.weighted(weights));
  return PrefixT(randomAddress(rng), len);
}

template <typename A>
A TableGen<A>::randomAddress(Rng& rng) {
  return drawAddress<A>(rng);
}

template <typename A>
typename TableGen<A>::PrefixT TableGen<A>::extend(Rng& rng, const PrefixT& p,
                                                  int max_extra) {
  const int room = A::kBits - p.length();
  const int extra =
      static_cast<int>(rng.uniform(1, static_cast<std::uint64_t>(
                                          std::min(max_extra, room))));
  A addr = p.addr();
  for (int i = 0; i < extra; ++i) {
    addr = addr.withBit(p.length() + i, static_cast<unsigned>(rng.u32() & 1));
  }
  return PrefixT(addr, p.length() + extra);
}

template <typename A>
Fib<A> TableGen<A>::generate(Rng& rng, const GenOptions<A>& opt) {
  std::unordered_set<PrefixT> seen;
  std::vector<EntryT> entries;
  entries.reserve(opt.size);
  seen.reserve(opt.size * 2);
  // Guard against degenerate option sets that cannot reach `size`.
  std::size_t attempts = 0;
  const std::size_t max_attempts = opt.size * 50 + 1000;
  while (entries.size() < opt.size && ++attempts < max_attempts) {
    PrefixT p;
    if (!entries.empty() && rng.chance(opt.subprefix_fraction)) {
      const PrefixT& parent = entries[rng.index(entries.size())].prefix;
      if (parent.length() >= A::kBits) continue;
      p = extend(rng, parent, 8);
    } else {
      p = randomPrefix(rng, opt.histogram);
      if (p.length() == 0) continue;
    }
    if (!seen.insert(p).second) continue;
    entries.push_back(
        EntryT{p, static_cast<NextHop>(rng.uniform(0, opt.next_hop_count - 1))});
  }
  return Fib<A>(std::move(entries));
}

template <typename A>
Fib<A> TableGen<A>::deriveNeighbor(const Fib<A>& base, Rng& rng,
                                   const NeighborOptions<A>& opt) {
  const auto base_entries = base.entries();
  std::unordered_set<PrefixT> base_set;
  base_set.reserve(base_entries.size() * 2);
  for (const EntryT& e : base_entries) base_set.insert(e.prefix);

  // Sample `shared` distinct base prefixes.
  std::vector<std::size_t> order(base_entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng.engine());
  const std::size_t shared = std::min(opt.shared, order.size());

  std::unordered_set<PrefixT> seen;
  std::vector<EntryT> entries;
  entries.reserve(shared + opt.fresh);
  for (std::size_t i = 0; i < shared; ++i) {
    const PrefixT& p = base_entries[order[i]].prefix;
    seen.insert(p);
    entries.push_back(EntryT{
        p, static_cast<NextHop>(rng.uniform(0, opt.next_hop_count - 1))});
  }

  // Fresh prefixes: extensions of shared ones (problematic-clue sources) and
  // independent ones.
  const std::size_t want_ext = static_cast<std::size_t>(
      static_cast<double>(opt.fresh) * opt.fresh_extension_fraction);
  std::size_t fresh_added = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = opt.fresh * 100 + 1000;
  const auto hist = defaultHistogram<A>();
  while (fresh_added < opt.fresh && ++attempts < max_attempts) {
    PrefixT p;
    if (fresh_added < want_ext && shared > 0) {
      const PrefixT& parent = entries[rng.index(shared)].prefix;
      if (parent.length() >= A::kBits) continue;
      p = extend(rng, parent, 6);
    } else {
      p = randomPrefix(rng, hist);
      if (p.length() == 0) continue;
    }
    if (base_set.count(p) != 0) continue;  // must be genuinely fresh
    if (!seen.insert(p).second) continue;
    entries.push_back(EntryT{
        p, static_cast<NextHop>(rng.uniform(0, opt.next_hop_count - 1))});
    ++fresh_added;
  }
  return Fib<A>(std::move(entries));
}

template class TableGen<ip::Ip4Addr>;
template class TableGen<ip::Ip6Addr>;

}  // namespace cluert::rib
