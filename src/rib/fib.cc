#include "rib/fib.h"

namespace cluert::rib {

template class Fib<ip::Ip4Addr>;
template class Fib<ip::Ip6Addr>;

}  // namespace cluert::rib
