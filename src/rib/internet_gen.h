// Synthetic internet: a three-tier router topology (core / mid / edge) with
// hierarchical address allocation, shortest-path route computation and
// scope-limited aggregation.
//
// This is the substrate behind Figure 1 ("Best matching prefix of a packet
// along its way to the destination") and behind the end-to-end network
// simulations: because aggregates are announced widely while the
// more-specifics stay near their origin, the BMP a packet matches grows as
// it approaches the destination — backbone routers match short aggregates
// (little clue-continuation work), edge routers match long specifics.
// Neighboring routers' tables are similar by construction, exactly the
// property §3 argues real tables have.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "rib/fib.h"

namespace cluert::rib {

struct InternetOptions {
  std::size_t cores = 4;             // backbone routers, fully meshed
  std::size_t mids_per_core = 3;     // regional routers per core
  std::size_t edges_per_mid = 4;     // access routers per regional
  std::size_t specifics_per_edge = 24;  // more-specific prefixes per edge
  std::uint64_t seed = 1;
};

class SyntheticInternet {
 public:
  using PrefixT = ip::Prefix4;
  using Addr = ip::Ip4Addr;

  explicit SyntheticInternet(const InternetOptions& options);

  enum class Tier { kCore, kMid, kEdge };

  std::size_t routerCount() const { return fibs_.size(); }
  Tier tierOf(RouterId r) const { return tiers_[r]; }
  const Fib4& fib(RouterId r) const { return fibs_[r]; }
  const std::vector<RouterId>& neighbors(RouterId r) const {
    return adjacency_[r];
  }

  std::vector<RouterId> coreRouters() const { return byTier(Tier::kCore); }
  std::vector<RouterId> edgeRouters() const { return byTier(Tier::kEdge); }

  // Shortest router path (BFS over the link graph), endpoints included.
  std::vector<RouterId> path(RouterId from, RouterId to) const;

  // The edge router originating the longest prefix covering `a` (kNoRouter
  // if `a` is outside every allocated block).
  RouterId originOf(const Addr& a) const;

  // A destination address drawn uniformly from the specifics of a uniformly
  // chosen edge router.
  Addr randomDestination(Rng& rng) const;

  // An address inside the given edge router's block.
  Addr randomDestinationAt(RouterId edge, Rng& rng) const;

 private:
  struct Origin {
    PrefixT prefix;
    RouterId router;
  };

  std::vector<RouterId> byTier(Tier t) const;
  void link(RouterId a, RouterId b);
  void computeFibs();

  InternetOptions options_;
  std::vector<Tier> tiers_;
  std::vector<std::vector<RouterId>> adjacency_;
  std::vector<Fib4> fibs_;
  // Per-router "owned" aggregate (cores own /8s, mids /12s, edges /16s) and
  // the specifics each edge originates.
  std::vector<PrefixT> owned_;
  std::vector<std::vector<PrefixT>> specifics_;  // indexed by router id
  std::vector<Origin> origins_;                  // all originated prefixes
};

}  // namespace cluert::rib
