// Epoch-versioned table publication: the control-plane/data-plane split that
// lets route updates run while pipeline workers keep forwarding (the
// dynamics the paper's §3.4 assumes but never spells out).
//
// Scheme (left-right double buffering + epoch-based reclamation):
//
//   * Two TableVersion buffers. One is *live* — reachable through an atomic
//     pointer, immutable by contract, read by every worker. The other is the
//     *shadow*, owned exclusively by the updater thread.
//   * publishLocal()/publishNeighbor() apply a FibDelta to the shadow
//     (incrementally — one engine rebuild per batch, not per route — or via
//     full rebuild past the churn threshold), stamp a fresh sequence number,
//     and swap the live pointer. The retired buffer then waits out a grace
//     period, is validated against the invariant checkers in debug builds,
//     and finally catches up by replaying the same delta — becoming the next
//     shadow. Steady-state cost per publish is O(delta + affected clue
//     entries), never O(two full tables).
//   * Workers pin a version per PacketBatch with pin(worker): the per-worker
//     epoch counter goes odd (pinned) before the live pointer is read, and
//     even again when the ReadGuard drops. The grace period waits only for
//     slots that were odd at swap time to *change* — readers that pinned the
//     new version never block the updater.
//
// The pin/swap/grace handshake itself lives in rib/epoch.h
// (EpochPublication): the same protocol code is instantiated here for
// production and in src/mc/harnesses.h under the model checker, which
// enumerates its interleavings exhaustively within bounds — see the
// memory-ordering rationale table in DESIGN.md §10.
//
// Correctness across swaps for in-flight clues (the Simple-analysis
// argument, spelled out in DESIGN.md §7): a packet's clue was computed
// against *some* sender table, but every entry of a published version is
// derived purely from that version's receiver table; for any clue that is a
// prefix of the destination, Simple analysis yields exactly
// BMP_receiver(dest), so a clue that straddles a swap is never wrong —
// merely a version older or newer than the sender intended, each
// self-consistent. Advance adds Claim-1 pruning against the sender's table,
// which is only safe when the sender's view is the one the clue was built
// from — so under *sender*-side churn with in-flight packets, run Simple.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "check/clue_check.h"
#include "check/fib_check.h"
#include "check/report.h"
#include "check/trie_check.h"
#include "common/check.h"
#include "core/clue_table.h"
#include "core/distributed_lookup.h"
#include "lookup/factory.h"
#include "obs/hooks.h"
#include "obs/trace.h"
#include "rib/epoch.h"
#include "rib/fib.h"
#include "rib/fib_diff.h"

namespace cluert::rib {

// One immutable-once-published snapshot of everything a data-plane worker
// reads: the receiver's lookup structures, the clue table derived from them,
// and the sender's prefix view the Advance analysis consulted.
//
// Cache-line aligned: the double-buffered versions (buf_[2] below) are read
// concurrently by every worker while the retired buffer is being rebuilt —
// alignment guarantees the writer's buffer never shares a line with the
// live one (no false sharing between the updater and the data plane).
template <typename A>
struct alignas(64) TableVersion {
  std::uint64_t seq = 0;
  Fib<A> local;     // receiver table this version was built from
  Fib<A> neighbor;  // sender table (the clue universe)
  trie::BinaryTrie<A> neighbor_trie;
  std::unique_ptr<lookup::LookupSuite<A>> suite;
  core::HashClueTable<A> clues{0};
  lookup::Method method = lookup::Method::kPatricia;
  lookup::ClueMode mode = lookup::ClueMode::kSimple;
  NeighborIndex neighbor_index = 0;
};

// Re-derives every invariant of a version from scratch: FIB well-formedness,
// FIB <-> trie agreement, trie structure, and field-by-field clue-entry
// consistency (FD/Ptr/Claim-1, probe chains, continuation anchors — the
// anchor checks are what catch a stale engine pointer surviving a rebuild).
// Run on every *retired* version in debug builds before its buffer is
// reused, so a publication bug is caught one swap after it happens.
template <typename A>
check::Report validateVersion(const TableVersion<A>& v) {
  check::Report report = check::validate(v.local);
  report.merge(check::validateConsistent(v.local, v.suite->binaryTrie()));
  report.merge(check::validate(v.suite->binaryTrie()));
  report.merge(check::validate(v.suite->patricia()));
  const trie::BinaryTrie<A>* t1 =
      v.mode == lookup::ClueMode::kAdvance ? &v.neighbor_trie : nullptr;
  report.merge(
      check::validate(v.clues, v.suite->binaryTrie(), t1, &v.suite->patricia()));
  return report;
}

template <typename A>
class VersionedTables {
 public:
  using PrefixT = ip::Prefix<A>;
  using EntryT = typename Fib<A>::EntryT;

  // Upper bound on concurrently pinning workers (one padded epoch slot
  // each); a hard CLUERT_CHECK, not a silent truncation.
  using EpochT = EpochPublication<TableVersion<A>>;
  static constexpr std::size_t kMaxEpochWorkers = EpochT::kMaxWorkers;

  struct Options {
    lookup::Method method = lookup::Method::kPatricia;
    lookup::ClueMode mode = lookup::ClueMode::kSimple;
    NeighborIndex neighbor_index = 0;
    // Deltas touching more than this fraction of the receiver table fall
    // back to a full rebuild: past that point re-deriving everything is
    // cheaper than patching, and it sheds accumulated §3.4-inactive slots.
    double full_rebuild_fraction = 0.25;
    // Run validateVersion() on every retired version (defaults on in debug
    // builds, off in NDEBUG — it re-derives every clue entry).
#ifdef NDEBUG
    bool validate_retired = false;
#else
    bool validate_retired = true;
#endif
    obs::MetricRegistry* registry = nullptr;
    // Runs on the updater thread immediately after each swap, with the
    // just-published (live, immutable) version. This is the hook the churn
    // oracle uses to record expected next hops per sequence number.
    std::function<void(const TableVersion<A>&)> on_publish;
  };

  // Builds both buffers from the initial tables (clue entries precomputed
  // for the sender's full prefix universe, §3.3.2) and publishes seq 1.
  VersionedTables(const Fib<A>& local, const Fib<A>& neighbor,
                  const Options& options)
      : options_(options) {
    if (options_.registry != nullptr) {
      churn_obs_ = obs::ChurnObs::bind(*options_.registry);
    }
    for (auto& buf : buf_) {
      buildFull(buf, local, neighbor);
      buf.seq = 1;
    }
    epoch_.storeLive(&buf_[0]);
    shadow_ = 1;
    seq_ = 1;
    if (churn_obs_.enabled()) churn_obs_.live_seq->set(1.0);
  }

  VersionedTables(const VersionedTables&) = delete;
  VersionedTables& operator=(const VersionedTables&) = delete;

  // -- data plane (any worker thread) ---------------------------------------

  // Holds one pinned version; the updater's grace period cannot complete
  // while a guard from an earlier swap is alive. Scope it to one
  // PacketBatch: pin, resolve the whole batch against *guard, drop.
  // The guard (and the pin protocol) is EpochPublication's — rib/epoch.h.
  using ReadGuard = typename EpochT::ReadGuard;

  ReadGuard pin(std::size_t worker) { return epoch_.pin(worker); }

  std::uint64_t liveSeq() const { return epoch_.loadLive()->seq; }

  // -- control plane (the single updater thread) ----------------------------

  // Applies a receiver-side delta and publishes the next version. Returns
  // the new sequence number (unchanged when the delta is empty).
  std::uint64_t publishLocal(const FibDelta<A>& d) {
    if (d.empty()) return seq_;
    return publishWith([&](TableVersion<A>& v) { return applyLocal(v, d); });
  }

  // Sender-side counterpart: maintains the neighbor view and the §3.4
  // markings (withdrawn clues go inactive, probe chains intact; announced
  // clues get fresh entries).
  std::uint64_t publishNeighbor(const FibDelta<A>& d) {
    if (d.empty()) return seq_;
    return publishWith([&](TableVersion<A>& v) { return applyNeighbor(v, d); });
  }

  // Control-plane peek at the live version. Safe from the updater thread
  // (only it can retire the pointee) or any thread while no publisher runs.
  const TableVersion<A>& liveVersion() const { return *epoch_.loadLive(); }

  std::uint64_t swaps() const { return swaps_; }
  std::uint64_t fullRebuilds() const { return full_rebuilds_; }

 private:
  // The one publication cycle every update goes through. `apply` mutates a
  // buffer and reports whether it took the full-rebuild path.
  template <typename ApplyFn>
  std::uint64_t publishWith(ApplyFn&& apply) {
    TableVersion<A>& next = buf_[shadow_];
    const std::uint64_t t0 = obs::Tracer::nowNs();
    const bool full = apply(next);
    next.seq = ++seq_;
    const std::uint64_t t1 = obs::Tracer::nowNs();

    TableVersion<A>* retired = epoch_.exchangeLive(&next);
    shadow_ ^= 1;
    ++swaps_;
    if (full) ++full_rebuilds_;
    if (options_.on_publish) options_.on_publish(next);

    epoch_.waitForReaders();
    const std::uint64_t t2 = obs::Tracer::nowNs();

    if (options_.validate_retired) {
      const check::Report report = validateVersion(*retired);
      CLUERT_CHECK(report.ok())
          << "retired version " << retired->seq
          << " failed validation:\n" << report.toString();
      ++retired_validations_;
      if (churn_obs_.enabled()) churn_obs_.retired_validated->inc();
    }
    // Catch the retired buffer up: replaying the identical apply against the
    // identical predecessor state lands it in the identical state — the two
    // buffers advance in lockstep, one publish apart.
    apply(*retired);
    retired->seq = next.seq;

    if (churn_obs_.enabled()) {
      churn_obs_.swaps->inc();
      if (full) churn_obs_.full_rebuilds->inc();
      churn_obs_.live_seq->set(static_cast<double>(next.seq));
      churn_obs_.apply_ns->shard(churn_obs_.shard).observe(t1 - t0);
      churn_obs_.grace_ns->shard(churn_obs_.shard).observe(t2 - t1);
    }
    return next.seq;
  }

  void buildFull(TableVersion<A>& v, const Fib<A>& local,
                 const Fib<A>& neighbor) {
    v.method = options_.method;
    v.mode = options_.mode;
    v.neighbor_index = options_.neighbor_index;
    v.local = local;
    v.neighbor = neighbor;
    v.neighbor_trie = neighbor.buildTrie();
    const auto entries = local.entries();
    // Materialise only the engine this version serves: every engine in the
    // suite's mask is reconstructed per publish, and a versioned table is
    // pinned to one method for its lifetime — the others would be rebuilt
    // on every delta and read never.
    lookup::SuiteOptions sopt;
    sopt.methods = lookup::methodBit(options_.method);
    v.suite = std::make_unique<lookup::LookupSuite<A>>(
        std::vector<EntryT>{entries.begin(), entries.end()}, sopt);
    if (v.mode == lookup::ClueMode::kAdvance) {
      v.suite->annotateNeighbor(v.neighbor_index, v.neighbor_trie);
    }
    // Fresh clue table over the sender's prefix universe. §3.4-inactive
    // entries are *dropped* here, not carried over: a missing entry is a
    // miss, and a miss routes correctly via the common lookup.
    v.clues = core::HashClueTable<A>(neighbor.size() + 16);
    for (const PrefixT& c : neighbor.prefixes()) {
      v.clues.insert(buildEntry(v, c));
    }
  }

  core::ClueEntry<A> buildEntry(const TableVersion<A>& v,
                                const PrefixT& clue) const {
    return core::buildClueEntry<A>(*v.suite, &v.neighbor_trie, v.method,
                                   v.mode, clue);
  }

  static bool related(const PrefixT& clue, const PrefixT& changed) {
    return clue.isPrefixOf(changed) || changed.isPrefixOf(clue);
  }

  bool wantsFullRebuild(const TableVersion<A>& v,
                        const FibDelta<A>& d) const {
    const double threshold =
        options_.full_rebuild_fraction *
        static_cast<double>(v.local.size() > 0 ? v.local.size() : 1);
    return static_cast<double>(d.size()) > threshold;
  }

  // Receiver-side apply. Returns true when it took the full-rebuild path.
  bool applyLocal(TableVersion<A>& v, const FibDelta<A>& d) {
    if (wantsFullRebuild(v, d)) {
      Fib<A> local = v.local;
      applyDelta(local, d);
      buildFull(v, local, v.neighbor);
      return true;
    }
    applyDelta(v.local, d);
    std::vector<EntryT> upserts;
    upserts.reserve(d.added.size() + d.rerouted.size());
    upserts.insert(upserts.end(), d.added.begin(), d.added.end());
    upserts.insert(upserts.end(), d.rerouted.begin(), d.rerouted.end());
    // One engine rebuild for the whole batch (vs one per route through
    // insertRoute/eraseRoute) — the point of the batched suite API.
    v.suite->applyRouteDelta(d.removed, upserts);
    // Refresh clue entries. Entries related to a changed prefix always need
    // it (their FD or candidate set moved). Case-3 continuation anchors are
    // method-dependent: kRegular/kPatricia anchor the *tries*, which the
    // suite patches in place (a structural change at an anchor implies a
    // related() prefix changed, so the first class already covers it);
    // kBinary/kMultiway candidate tables are entry-owned shared_ptrs; kLogW
    // stores only a length bound. Only kStride anchors nodes the engine
    // rebuild frees — there, *every* case-3 entry must be rebuilt or the
    // stale anchor is a use-after-free, which is exactly what the
    // retired-version anchor validation would flag. Keeping the refresh
    // related()-only for the other methods is what makes a publish
    // O(delta), not O(clue table).
    const bool anchors_dangle = v.method == lookup::Method::kStride;
    v.clues.forEachMutable([&](core::ClueEntry<A>& e) {
      bool needs = anchors_dangle && e.kase == core::ClueCase::kSearch;
      if (!needs) {
        for (const PrefixT& p : d.removed) {
          if (related(e.clue, p)) {
            needs = true;
            break;
          }
        }
      }
      if (!needs) {
        for (const EntryT& u : upserts) {
          if (related(e.clue, u.prefix)) {
            needs = true;
            break;
          }
        }
      }
      if (needs) {
        const bool was_active = e.active;  // preserve §3.4 marking
        e = buildEntry(v, e.clue);
        e.active = was_active;
      }
    });
    return false;
  }

  // Sender-side apply: update the neighbor view, mark withdrawn clues
  // inactive (§3.4 — removal would break open-addressing probe chains),
  // install entries for announcements, and refresh what Claim 1 depended on.
  bool applyNeighbor(TableVersion<A>& v, const FibDelta<A>& d) {
    if (wantsFullRebuild(v, d)) {
      Fib<A> neighbor = v.neighbor;
      applyDelta(neighbor, d);
      buildFull(v, v.local, neighbor);
      return true;
    }
    applyDelta(v.neighbor, d);
    for (const PrefixT& p : d.removed) v.neighbor_trie.erase(p);
    for (const EntryT& e : d.added) v.neighbor_trie.insert(e.prefix, e.next_hop);
    for (const EntryT& e : d.rerouted) {
      v.neighbor_trie.insert(e.prefix, e.next_hop);
    }
    if (v.mode == lookup::ClueMode::kAdvance) {
      // Claim-1 continue bits are per-vertex state on the suite's tries;
      // recompute them against the moved neighbor view. In-place: engine
      // anchors stay valid (no engine rebuild happens here).
      v.suite->annotateNeighbor(v.neighbor_index, v.neighbor_trie);
    }
    for (const PrefixT& p : d.removed) v.clues.setActive(p, false);
    for (const EntryT& e : d.added) {
      if (core::ClueEntry<A>* slot = v.clues.findMutable(e.prefix)) {
        *slot = buildEntry(v, e.prefix);  // re-announce: fresh and active
      } else {
        v.clues.insert(buildEntry(v, e.prefix));
      }
    }
    if (v.mode == lookup::ClueMode::kAdvance) {
      // Claim-1 pruning consults the sender's subtree below each clue; any
      // entry related to a changed prefix may prune differently now.
      v.clues.forEachMutable([&](core::ClueEntry<A>& e) {
        bool needs = false;
        for (const PrefixT& p : d.removed) {
          if (related(e.clue, p)) {
            needs = true;
            break;
          }
        }
        if (!needs) {
          for (const EntryT& u : d.added) {
            if (related(e.clue, u.prefix)) {
              needs = true;
              break;
            }
          }
        }
        if (needs) {
          const bool was_active = e.active;
          e = buildEntry(v, e.clue);
          e.active = was_active;
        }
      });
    }
    return false;
  }

  Options options_;
  TableVersion<A> buf_[2];
  EpochT epoch_;
  std::size_t shadow_ = 1;       // updater-owned buffer index
  std::uint64_t seq_ = 0;        // updater-owned sequence counter
  std::uint64_t swaps_ = 0;
  std::uint64_t full_rebuilds_ = 0;
  std::uint64_t retired_validations_ = 0;
  obs::ChurnObs churn_obs_;
};

using VersionedTables4 = VersionedTables<ip::Ip4Addr>;

}  // namespace cluert::rib
