#include "rib/internet_gen.h"

#include <algorithm>
#include <deque>
#include <unordered_set>
#include "common/check.h"

namespace cluert::rib {

namespace {

// Address layout: core c owns (10+c).0.0.0/8; mid j under c owns the /12
// with bits 8..11 = j; edge k under that mid owns the /16 with bits
// 12..15 = k. Keeps everything disjoint for up to 16 mids/core and 16
// edges/mid.
ip::Prefix4 coreBlock(std::size_t c) {
  return ip::Prefix4(ip::Ip4Addr(static_cast<std::uint32_t>(10 + c) << 24), 8);
}

ip::Prefix4 midBlock(std::size_t c, std::size_t j) {
  const std::uint32_t v = (static_cast<std::uint32_t>(10 + c) << 24) |
                          (static_cast<std::uint32_t>(j) << 20);
  return ip::Prefix4(ip::Ip4Addr(v), 12);
}

ip::Prefix4 edgeBlock(std::size_t c, std::size_t j, std::size_t k) {
  const std::uint32_t v = (static_cast<std::uint32_t>(10 + c) << 24) |
                          (static_cast<std::uint32_t>(j) << 20) |
                          (static_cast<std::uint32_t>(k) << 16);
  return ip::Prefix4(ip::Ip4Addr(v), 16);
}

}  // namespace

SyntheticInternet::SyntheticInternet(const InternetOptions& options)
    : options_(options) {
  CLUERT_CHECK(options.cores >= 1 && options.cores <= 16)
      << "cores " << options.cores;
  CLUERT_CHECK(options.mids_per_core >= 1 && options.mids_per_core <= 16)
      << "mids_per_core " << options.mids_per_core;
  CLUERT_CHECK(options.edges_per_mid >= 1 && options.edges_per_mid <= 16)
      << "edges_per_mid " << options.edges_per_mid;

  const std::size_t cores = options.cores;
  const std::size_t mids = cores * options.mids_per_core;
  const std::size_t edges = mids * options.edges_per_mid;
  const std::size_t total = cores + mids + edges;

  tiers_.assign(total, Tier::kEdge);
  adjacency_.assign(total, {});
  owned_.assign(total, PrefixT{});
  specifics_.assign(total, {});
  fibs_.assign(total, Fib4{});

  // Ids: cores first, then mids grouped by core, then edges grouped by mid.
  const auto coreId = [&](std::size_t c) { return static_cast<RouterId>(c); };
  const auto midId = [&](std::size_t c, std::size_t j) {
    return static_cast<RouterId>(cores + c * options.mids_per_core + j);
  };
  const auto edgeId = [&](std::size_t c, std::size_t j, std::size_t k) {
    return static_cast<RouterId>(
        cores + mids +
        (c * options.mids_per_core + j) * options.edges_per_mid + k);
  };

  Rng rng(options.seed);

  // Topology: full core mesh; each mid dual-homed to its core and the next;
  // each edge single-homed to its mid.
  for (std::size_t a = 0; a < cores; ++a) {
    tiers_[coreId(a)] = Tier::kCore;
    owned_[coreId(a)] = coreBlock(a);
    for (std::size_t b = a + 1; b < cores; ++b) link(coreId(a), coreId(b));
  }
  for (std::size_t c = 0; c < cores; ++c) {
    for (std::size_t j = 0; j < options.mids_per_core; ++j) {
      const RouterId m = midId(c, j);
      tiers_[m] = Tier::kMid;
      owned_[m] = midBlock(c, j);
      link(m, coreId(c));
      if (cores > 1) link(m, coreId((c + 1) % cores));
      for (std::size_t k = 0; k < options.edges_per_mid; ++k) {
        const RouterId e = edgeId(c, j, k);
        tiers_[e] = Tier::kEdge;
        owned_[e] = edgeBlock(c, j, k);
        link(e, m);
        // Originated specifics: distinct prefixes of length 17..26 inside
        // the edge's /16.
        std::unordered_set<PrefixT> seen;
        while (specifics_[e].size() < options.specifics_per_edge) {
          const int len = static_cast<int>(rng.uniform(17, 26));
          ip::Ip4Addr a4 = owned_[e].addr();
          for (int bit = 16; bit < len; ++bit) {
            a4 = a4.withBit(bit, static_cast<unsigned>(rng.u32() & 1));
          }
          const PrefixT p(a4, len);
          if (seen.insert(p).second) specifics_[e].push_back(p);
        }
      }
    }
  }

  // Origin registry (for originOf / Figure 1 ground truth).
  for (RouterId r = 0; r < total; ++r) {
    origins_.push_back(Origin{owned_[r], r});
    for (const PrefixT& p : specifics_[r]) origins_.push_back(Origin{p, r});
  }

  computeFibs();
}

void SyntheticInternet::link(RouterId a, RouterId b) {
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
}

std::vector<RouterId> SyntheticInternet::byTier(Tier t) const {
  std::vector<RouterId> out;
  for (RouterId r = 0; r < tiers_.size(); ++r) {
    if (tiers_[r] == t) out.push_back(r);
  }
  return out;
}

std::vector<RouterId> SyntheticInternet::path(RouterId from,
                                              RouterId to) const {
  // BFS from `to`; walk parents from `from`.
  std::vector<RouterId> parent(tiers_.size(), kNoRouter);
  std::vector<char> seen(tiers_.size(), 0);
  std::deque<RouterId> queue{to};
  seen[to] = 1;
  while (!queue.empty()) {
    const RouterId r = queue.front();
    queue.pop_front();
    for (RouterId n : adjacency_[r]) {
      if (!seen[n]) {
        seen[n] = 1;
        parent[n] = r;
        queue.push_back(n);
      }
    }
  }
  std::vector<RouterId> out;
  if (!seen[from]) return out;
  for (RouterId r = from; r != kNoRouter; r = parent[r]) {
    out.push_back(r);
    if (r == to) break;
  }
  return out;
}

void SyntheticInternet::computeFibs() {
  const std::size_t total = tiers_.size();
  // All-pairs next hop: BFS from every owner.
  std::vector<std::vector<RouterId>> toward(total);  // toward[t][r]
  for (RouterId t = 0; t < total; ++t) {
    std::vector<RouterId> next(total, kNoRouter);
    std::vector<int> dist(total, -1);
    std::deque<RouterId> queue{t};
    dist[t] = 0;
    next[t] = t;
    while (!queue.empty()) {
      const RouterId r = queue.front();
      queue.pop_front();
      for (RouterId n : adjacency_[r]) {
        if (dist[n] < 0) {
          dist[n] = dist[r] + 1;
          next[n] = r;  // first hop from n toward t goes via r
          queue.push_back(n);
        }
      }
    }
    toward[t] = std::move(next);
  }

  const std::size_t cores = options_.cores;
  const auto homeCoreOf = [&](RouterId r) -> std::size_t {
    // Derived from the owned block's first octet.
    return (owned_[r].addr().value() >> 24) - 10;
  };

  for (RouterId r = 0; r < total; ++r) {
    std::vector<Fib4::EntryT> entries;
    // Everyone knows every core aggregate (/8).
    for (RouterId c = 0; c < cores; ++c) {
      entries.push_back({owned_[c], toward[c][r]});
    }
    // Routers of region X also know X's /12 mid aggregates.
    for (RouterId m = 0; m < total; ++m) {
      if (tiers_[m] != Tier::kMid) continue;
      if (homeCoreOf(m) != homeCoreOf(r)) continue;
      entries.push_back({owned_[m], toward[m][r]});
    }
    // A mid and its edges know the /16 of every edge under that mid, plus
    // those edges' specifics (the mid is where aggregation to /12 happens on
    // the way up, so below it everything is specific).
    for (RouterId e = 0; e < total; ++e) {
      if (tiers_[e] != Tier::kEdge) continue;
      const RouterId home_mid = adjacency_[e].front();
      const bool in_subtree =
          r == e || r == home_mid ||
          (tiers_[r] == Tier::kEdge && adjacency_[r].front() == home_mid);
      if (!in_subtree) continue;
      entries.push_back({owned_[e], toward[e][r]});
      for (const PrefixT& p : specifics_[e]) {
        entries.push_back({p, toward[e][r]});
      }
    }
    fibs_[r] = Fib4(std::move(entries));
  }
}

RouterId SyntheticInternet::originOf(const Addr& a) const {
  RouterId best = kNoRouter;
  int best_len = -1;
  for (const Origin& o : origins_) {
    if (o.prefix.matches(a) && o.prefix.length() > best_len) {
      best = o.router;
      best_len = o.prefix.length();
    }
  }
  return best;
}

ip::Ip4Addr SyntheticInternet::randomDestination(Rng& rng) const {
  const auto edges = edgeRouters();
  return randomDestinationAt(edges[rng.index(edges.size())], rng);
}

ip::Ip4Addr SyntheticInternet::randomDestinationAt(RouterId edge,
                                                   Rng& rng) const {
  CLUERT_CHECK(tiers_[edge] == Tier::kEdge)
      << "router " << edge << " is not an edge router";
  const auto& specs = specifics_[edge];
  const PrefixT& p = specs.empty() ? owned_[edge]
                                   : specs[rng.index(specs.size())];
  ip::Ip4Addr a = p.addr();
  for (int bit = p.length(); bit < 32; ++bit) {
    a = a.withBit(bit, static_cast<unsigned>(rng.u32() & 1));
  }
  return a;
}

}  // namespace cluert::rib
