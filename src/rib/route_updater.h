// The dedicated updater thread of the control-plane/data-plane split: a
// routing-protocol front end (or a churn generator) enqueues FibDelta
// batches; this thread consumes them in order and drives
// VersionedTables::publishLocal / publishNeighbor. Publication is
// single-threaded by construction — the queue is the only synchronization
// the control plane needs, and the data plane never blocks on it.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/stats.h"
#include "rib/fib_diff.h"
#include "rib/versioned_tables.h"

namespace cluert::rib {

template <typename A>
class RouteUpdater {
 public:
  explicit RouteUpdater(VersionedTables<A>& tables) : tables_(tables) {
    thread_ = std::thread([this] { run(); });
  }

  RouteUpdater(const RouteUpdater&) = delete;
  RouteUpdater& operator=(const RouteUpdater&) = delete;

  ~RouteUpdater() { stop(); }

  // Hands a receiver-side (local) or sender-side (neighbor) delta to the
  // updater. Returns immediately; the publish happens asynchronously, in
  // enqueue order.
  void enqueueLocal(FibDelta<A> d) { enqueue(std::move(d), /*neighbor=*/false); }
  void enqueueNeighbor(FibDelta<A> d) {
    enqueue(std::move(d), /*neighbor=*/true);
  }

  // Blocks until every delta enqueued before the call has been published
  // (queue empty and no publish in flight). The synchronization primitive a
  // config-reload path needs to answer "is the new table live yet" — the
  // cluertd admin endpoint and the reload tests both wait on it.
  void flush() CLUERT_EXCLUDES(mu_) {
    sync::MutexLock lock(mu_);
    flushed_cv_.wait(mu_, [this]() CLUERT_REQUIRES(mu_) {
      return queue_.empty() && !publishing_;
    });
  }

  // Drains the queue (every enqueued delta is published) and joins the
  // thread. Idempotent.
  void stop() CLUERT_EXCLUDES(mu_) {
    {
      sync::MutexLock lock(mu_);
      if (stopping_) return;
      stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  // Deltas published so far (reads are racy while the thread runs; exact
  // after stop()).
  std::uint64_t published() const CLUERT_EXCLUDES(mu_) {
    sync::MutexLock lock(mu_);
    return published_;
  }

  // Enqueue-to-publish latency, nanoseconds per delta. Call after stop().
  Summary latencyNs() const CLUERT_EXCLUDES(mu_) {
    sync::MutexLock lock(mu_);
    return latency_ns_;
  }

 private:
  struct Item {
    FibDelta<A> delta;
    bool neighbor = false;
    std::chrono::steady_clock::time_point enqueued;
  };

  void enqueue(FibDelta<A> d, bool neighbor) CLUERT_EXCLUDES(mu_) {
    if (d.empty()) return;
    {
      sync::MutexLock lock(mu_);
      CLUERT_CHECK(!stopping_) << "enqueue after RouteUpdater::stop()";
      queue_.push_back(
          Item{std::move(d), neighbor, std::chrono::steady_clock::now()});
    }
    cv_.notify_one();
  }

  void run() CLUERT_EXCLUDES(mu_) {
    for (;;) {
      Item item;
      {
        sync::MutexLock lock(mu_);
        cv_.wait(mu_, [this]() CLUERT_REQUIRES(mu_) {
          return stopping_ || !queue_.empty();
        });
        if (queue_.empty()) {
          flushed_cv_.notify_all();
          return;  // stopping and drained
        }
        item = std::move(queue_.front());
        queue_.pop_front();
        publishing_ = true;
      }
      // Publish outside the lock: the grace-period wait must never hold the
      // queue mutex (enqueuers would stall behind slow readers).
      if (item.neighbor) {
        tables_.publishNeighbor(item.delta);
      } else {
        tables_.publishLocal(item.delta);
      }
      const auto done = std::chrono::steady_clock::now();
      {
        sync::MutexLock lock(mu_);
        publishing_ = false;
        ++published_;
        latency_ns_.add(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                done - item.enqueued)
                .count()));
      }
      flushed_cv_.notify_all();
    }
  }

  VersionedTables<A>& tables_;
  mutable sync::Mutex mu_;
  sync::CondVar cv_;
  sync::CondVar flushed_cv_;
  std::deque<Item> queue_ CLUERT_GUARDED_BY(mu_);
  bool stopping_ CLUERT_GUARDED_BY(mu_) = false;
  bool publishing_ CLUERT_GUARDED_BY(mu_) = false;
  std::uint64_t published_ CLUERT_GUARDED_BY(mu_) = 0;
  Summary latency_ns_ CLUERT_GUARDED_BY(mu_);
  std::thread thread_;
};

using RouteUpdater4 = RouteUpdater<ip::Ip4Addr>;

}  // namespace cluert::rib
