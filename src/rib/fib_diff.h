// FIB delta computation: what changed between two versions of a table.
// This is the unit of work a routing-protocol reconvergence hands to the
// route-update machinery — either the in-place path here
// (LookupSuite::insertRoute/eraseRoute and CluePort::onLocalRouteChanged /
// onNeighborRouteChanged) or the epoch-versioned publication path
// (rib::VersionedTables / rib::RouteUpdater), which consumes FibDelta
// batches on a dedicated updater thread.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "rib/fib.h"

namespace cluert::rib {

template <typename A>
struct FibDelta {
  using EntryT = typename Fib<A>::EntryT;
  using PrefixT = typename Fib<A>::PrefixT;

  std::vector<EntryT> added;     // prefix new in `next`
  std::vector<PrefixT> removed;  // prefix gone from `prev`
  std::vector<EntryT> rerouted;  // same prefix, new next hop

  bool empty() const {
    return added.empty() && removed.empty() && rerouted.empty();
  }
  std::size_t size() const {
    return added.size() + removed.size() + rerouted.size();
  }
};

using FibDelta4 = FibDelta<ip::Ip4Addr>;

namespace detail {

// Canonical (addr, length) order shared by every diff output vector, so a
// delta is a pure function of the two tables — churn replays and the
// versioned-table builders must not depend on hash-map iteration order.
template <typename A>
bool prefixLess(const ip::Prefix<A>& x, const ip::Prefix<A>& y) {
  if (x.addr() != y.addr()) return x.addr() < y.addr();
  return x.length() < y.length();
}

}  // namespace detail

template <typename A>
FibDelta<A> diff(const Fib<A>& prev, const Fib<A>& next) {
  using PrefixT = typename Fib<A>::PrefixT;
  FibDelta<A> d;
  // Last-wins collapse of both sides. entries() is deduplicated for tables
  // built through the normalizing paths, but add()-built tables reach here
  // too, and a duplicated prefix must not be double-counted (the old code
  // erased on first sight, so a second occurrence of a surviving prefix
  // would be misreported as `added`).
  std::unordered_map<PrefixT, NextHop> old_routes;
  old_routes.reserve(prev.size());
  for (const auto& e : prev.entries()) old_routes[e.prefix] = e.next_hop;
  std::unordered_map<PrefixT, NextHop> new_routes;
  new_routes.reserve(next.size());
  for (const auto& e : next.entries()) new_routes[e.prefix] = e.next_hop;

  for (const auto& [prefix, nh] : new_routes) {
    const auto it = old_routes.find(prefix);
    if (it == old_routes.end()) {
      d.added.push_back({prefix, nh});
    } else if (it->second != nh) {
      d.rerouted.push_back({prefix, nh});
    }
  }
  for (const auto& [prefix, nh] : old_routes) {
    if (new_routes.find(prefix) == new_routes.end()) {
      d.removed.push_back(prefix);
    }
  }

  const auto entry_less = [](const auto& x, const auto& y) {
    return detail::prefixLess<A>(x.prefix, y.prefix);
  };
  std::sort(d.added.begin(), d.added.end(), entry_less);
  std::sort(d.rerouted.begin(), d.rerouted.end(), entry_less);
  std::sort(d.removed.begin(), d.removed.end(), detail::prefixLess<A>);
  return d;
}

// Applies a delta to a plain table: prev + diff(prev, next) == next. Shared
// by the versioned-table builder (both left-right buffers replay the same
// deltas) and tests. Removals land before adds, mirroring applyLocalDelta.
template <typename A>
void applyDelta(Fib<A>& fib, const FibDelta<A>& d) {
  if (d.empty()) return;
  for (const auto& p : d.removed) fib.remove(p);
  for (const auto& e : d.added) fib.add(e.prefix, e.next_hop);
  for (const auto& e : d.rerouted) fib.add(e.prefix, e.next_hop);
}

// Applies a delta to a lookup suite and notifies a clue port. `SuiteT` is
// lookup::LookupSuite<A>; `PortT` is core::CluePort<A> (templates avoid a
// dependency cycle between rib and core). Removals run before adds so no
// transient state ever widens a prefix: a withdraw-then-announce of nested
// prefixes must pass through the narrower table, never a wider one.
template <typename A, typename SuiteT, typename PortT>
void applyLocalDelta(const FibDelta<A>& d, SuiteT& suite, PortT& port) {
  if (d.empty()) return;  // refreshAfterChange is O(table); skip clean diffs
  for (const auto& p : d.removed) {
    suite.eraseRoute(p);
    port.onLocalRouteChanged(p);
  }
  for (const auto& e : d.added) {
    suite.insertRoute(e.prefix, e.next_hop);
    port.onLocalRouteChanged(e.prefix);
  }
  for (const auto& e : d.rerouted) {
    suite.insertRoute(e.prefix, e.next_hop);  // overwrite in place
    port.onLocalRouteChanged(e.prefix);
  }
}

// Neighbor-side counterpart: maintains the sender's prefix view `t1`
// (shared with the port) and refreshes affected entries.
template <typename A, typename PortT>
void applyNeighborDelta(const FibDelta<A>& d, trie::BinaryTrie<A>& t1,
                        PortT& port) {
  if (d.empty()) return;
  for (const auto& p : d.removed) {
    t1.erase(p);
    port.onNeighborRouteChanged(p);
  }
  for (const auto& e : d.added) {
    t1.insert(e.prefix, e.next_hop);
    port.onNeighborRouteChanged(e.prefix);
  }
  for (const auto& e : d.rerouted) {
    t1.insert(e.prefix, e.next_hop);
    port.onNeighborRouteChanged(e.prefix);
  }
}

}  // namespace cluert::rib
