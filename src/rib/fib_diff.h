// FIB delta computation: what changed between two versions of a table.
// This is the unit of work a routing-protocol reconvergence hands to the
// route-update machinery (LookupSuite::insertRoute/eraseRoute and
// CluePort::onLocalRouteChanged / onNeighborRouteChanged).
#pragma once

#include <unordered_map>
#include <vector>

#include "rib/fib.h"

namespace cluert::rib {

template <typename A>
struct FibDelta {
  using EntryT = typename Fib<A>::EntryT;

  std::vector<EntryT> added;             // prefix new in `next`
  std::vector<typename Fib<A>::PrefixT> removed;  // prefix gone from `prev`
  std::vector<EntryT> rerouted;          // same prefix, new next hop

  bool empty() const {
    return added.empty() && removed.empty() && rerouted.empty();
  }
  std::size_t size() const {
    return added.size() + removed.size() + rerouted.size();
  }
};

template <typename A>
FibDelta<A> diff(const Fib<A>& prev, const Fib<A>& next) {
  FibDelta<A> d;
  std::unordered_map<typename Fib<A>::PrefixT, NextHop> old_routes;
  old_routes.reserve(prev.size() * 2);
  for (const auto& e : prev.entries()) old_routes.emplace(e.prefix, e.next_hop);
  for (const auto& e : next.entries()) {
    const auto it = old_routes.find(e.prefix);
    if (it == old_routes.end()) {
      d.added.push_back(e);
    } else {
      if (it->second != e.next_hop) d.rerouted.push_back(e);
      old_routes.erase(it);
    }
  }
  d.removed.reserve(old_routes.size());
  for (const auto& [prefix, nh] : old_routes) d.removed.push_back(prefix);
  return d;
}

// Applies a delta to a lookup suite and notifies a clue port. `SuiteT` is
// lookup::LookupSuite<A>; `PortT` is core::CluePort<A> (templates avoid a
// dependency cycle between rib and core).
template <typename A, typename SuiteT, typename PortT>
void applyLocalDelta(const FibDelta<A>& d, SuiteT& suite, PortT& port) {
  for (const auto& p : d.removed) {
    suite.eraseRoute(p);
    port.onLocalRouteChanged(p);
  }
  for (const auto& e : d.added) {
    suite.insertRoute(e.prefix, e.next_hop);
    port.onLocalRouteChanged(e.prefix);
  }
  for (const auto& e : d.rerouted) {
    suite.insertRoute(e.prefix, e.next_hop);  // overwrite in place
    port.onLocalRouteChanged(e.prefix);
  }
}

// Neighbor-side counterpart: maintains the sender's prefix view `t1`
// (shared with the port) and refreshes affected entries.
template <typename A, typename PortT>
void applyNeighborDelta(const FibDelta<A>& d, trie::BinaryTrie<A>& t1,
                        PortT& port) {
  for (const auto& p : d.removed) {
    t1.erase(p);
    port.onNeighborRouteChanged(p);
  }
  for (const auto& e : d.added) {
    t1.insert(e.prefix, e.next_hop);
    port.onNeighborRouteChanged(e.prefix);
  }
  for (const auto& e : d.rerouted) {
    t1.insert(e.prefix, e.next_hop);
    port.onNeighborRouteChanged(e.prefix);
  }
}

}  // namespace cluert::rib
