// Forwarding information base: the flat (prefix -> next hop) table a router
// builds its lookup structures from, plus the set operations the paper's
// Tables 1 and 3 report on.
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "ip/prefix.h"
#include "trie/binary_trie.h"

namespace cluert::rib {

template <typename A>
class Fib {
 public:
  using PrefixT = ip::Prefix<A>;
  using EntryT = trie::Match<A>;

  Fib() = default;
  explicit Fib(std::vector<EntryT> entries) : entries_(std::move(entries)) {
    normalize();
  }

  // Adds or replaces a route.
  void add(const PrefixT& prefix, NextHop next_hop) {
    for (EntryT& e : entries_) {
      if (e.prefix == prefix) {
        e.next_hop = next_hop;
        return;
      }
    }
    entries_.push_back(EntryT{prefix, next_hop});
  }

  // Withdraws a route. Returns false when the prefix was not present.
  bool remove(const PrefixT& prefix) {
    const auto it =
        std::find_if(entries_.begin(), entries_.end(),
                     [&](const EntryT& e) { return e.prefix == prefix; });
    if (it == entries_.end()) return false;
    entries_.erase(it);
    return true;
  }

  std::span<const EntryT> entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  bool contains(const PrefixT& prefix) const {
    return std::any_of(entries_.begin(), entries_.end(),
                       [&](const EntryT& e) { return e.prefix == prefix; });
  }

  // The control/data-plane trie for this table.
  trie::BinaryTrie<A> buildTrie() const {
    trie::BinaryTrie<A> t;
    for (const EntryT& e : entries_) t.insert(e.prefix, e.next_hop);
    return t;
  }

  // All prefixes (the clue universe of this router as a *sender*).
  std::vector<PrefixT> prefixes() const {
    std::vector<PrefixT> out;
    out.reserve(entries_.size());
    for (const EntryT& e : entries_) out.push_back(e.prefix);
    return out;
  }

  // |this ∩ other| counted over prefix sets (Table 3, "the total number of
  // prefixes of one router that also appear in the other").
  std::size_t intersectionSize(const Fib& other) const {
    std::unordered_set<PrefixT> mine;
    mine.reserve(entries_.size() * 2);
    for (const EntryT& e : entries_) mine.insert(e.prefix);
    std::size_t n = 0;
    for (const EntryT& e : other.entries_) n += mine.count(e.prefix);
    return n;
  }

  // One "prefix next_hop" line per entry.
  std::string serialize() const {
    std::ostringstream os;
    for (const EntryT& e : entries_) {
      os << e.prefix.toString() << ' ' << e.next_hop << '\n';
    }
    return os.str();
  }

  static std::optional<Fib> parse(std::string_view text) {
    Fib fib;
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t eol = text.find('\n', pos);
      if (eol == std::string_view::npos) eol = text.size();
      const std::string_view line = text.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      const auto space = line.find(' ');
      if (space == std::string_view::npos) return std::nullopt;
      const auto prefix = PrefixT::parse(line.substr(0, space));
      if (!prefix) return std::nullopt;
      NextHop nh = 0;
      for (char c : line.substr(space + 1)) {
        if (c < '0' || c > '9') return std::nullopt;
        nh = nh * 10 + static_cast<NextHop>(c - '0');
      }
      fib.entries_.push_back(EntryT{*prefix, nh});
    }
    fib.normalize();
    return fib;
  }

 private:
  // Deduplicates (last writer wins) and orders canonically.
  void normalize() {
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const EntryT& x, const EntryT& y) {
                       if (x.prefix.addr() != y.prefix.addr()) {
                         return x.prefix.addr() < y.prefix.addr();
                       }
                       return x.prefix.length() < y.prefix.length();
                     });
    // Keep the last occurrence of duplicate prefixes.
    std::vector<EntryT> out;
    out.reserve(entries_.size());
    for (const EntryT& e : entries_) {
      if (!out.empty() && out.back().prefix == e.prefix) {
        out.back() = e;
      } else {
        out.push_back(e);
      }
    }
    entries_ = std::move(out);
  }

  std::vector<EntryT> entries_;
};

using Fib4 = Fib<ip::Ip4Addr>;
using Fib6 = Fib<ip::Ip6Addr>;

}  // namespace cluert::rib
