// The seven synthetic router tables standing in for the paper's §6
// snapshots, calibrated to the published statistics:
//
//   Table 1 (total prefixes):  MAE-East 42,123 | MAE-West 24,500 |
//     Paix 5,974 | AT&T-1 23,414 | AT&T-2 60,475 | ISP-B-1 56,034 |
//     ISP-B-2 55,959
//   Table 3 (intersections):   East∩West 23,382 | East∩Paix 5,899 |
//     West∩Paix 5,814 | AT&T-1∩AT&T-2 23,381 | ISP-B-1∩ISP-B-2 55,540
//   Table 2 (problematic clues): a few tens to a few hundreds per pair —
//     0.1%-2.5% of the clue universe (the paper reports 95%-99.5% of clues
//     satisfy Claim 1).
//
// See DESIGN.md "Substitutions" for why matching these three statistics
// preserves the paper's access-count behaviour.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "rib/table_gen.h"

namespace cluert::rib {

struct Snapshot {
  std::string_view name;
  Fib4 fib;
};

struct SnapshotSet {
  std::vector<Snapshot> routers;

  const Fib4& byName(std::string_view name) const;
};

// The sender -> receiver pairs evaluated in §6 Tables 2 and 4-9.
struct SnapshotPair {
  std::string_view sender;
  std::string_view receiver;
};

// The seven pairs of Table 2, in paper order.
std::vector<SnapshotPair> paperPairs();

// The five intersection pairs of Table 3.
std::vector<SnapshotPair> intersectionPairs();

// Builds the seven calibrated tables. Deterministic for a given seed.
// `scale` in (0, 1] shrinks every table proportionally (the unit tests use
// small scales; the benchmarks use 1.0).
SnapshotSet makePaperSnapshots(std::uint64_t seed, double scale = 1.0);

}  // namespace cluert::rib
