#include "rib/snapshot.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include "common/check.h"

namespace cluert::rib {

namespace {

using Prefix4 = ip::Prefix4;
using Entry = Fib4::EntryT;

constexpr NextHop kNextHopFanout = 16;

NextHop randomNextHop(Rng& rng) {
  return static_cast<NextHop>(rng.uniform(0, kNextHopFanout - 1));
}

// A uniformly sampled `count`-subset of `pool` (fresh next hops: the two
// routers forward through different ports).
std::vector<Entry> sampleFrom(const std::vector<Prefix4>& pool, Rng& rng,
                              std::size_t count) {
  std::vector<std::size_t> order(pool.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng.engine());
  count = std::min(count, pool.size());
  std::vector<Entry> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(Entry{pool[order[i]], randomNextHop(rng)});
  }
  return out;
}

Prefix4 extendPrefix(Rng& rng, const Prefix4& parent, int max_extra) {
  const int room = 32 - parent.length();
  const int extra = static_cast<int>(
      rng.uniform(1, static_cast<std::uint64_t>(std::min(max_extra, room))));
  ip::Ip4Addr a = parent.addr();
  for (int i = 0; i < extra; ++i) {
    a = a.withBit(parent.length() + i, static_cast<unsigned>(rng.u32() & 1));
  }
  return Prefix4(a, parent.length() + extra);
}

// True iff some strict ancestor of `p` is in `set`.
bool hasAncestorIn(const Prefix4& p, const std::unordered_set<Prefix4>& set) {
  for (int len = p.length() - 1; len > 0; --len) {
    if (set.count(p.truncated(len)) != 0) return true;
  }
  return false;
}

// `count` prefixes absent from `avoid`: a fraction `ext_fraction` strictly
// extend a member of `parents` (these are what makes clues problematic at
// the router that owns the result), the rest are drawn independently.
// When `no_ancestors_in` is given, the independent draws additionally avoid
// nesting under that prefix set — this pins the problematic-clue count of
// Table 2 to the extension fraction alone (a random /24 would otherwise
// land under some sender /8 half the time and inflate the count).
std::vector<Entry> freshPrefixes(
    Rng& rng, std::size_t count, double ext_fraction,
    const std::vector<Prefix4>& parents, std::unordered_set<Prefix4>& avoid,
    const std::unordered_set<Prefix4>* no_ancestors_in = nullptr) {
  const auto hist = internetLengths1999();
  const std::vector<double> weights(hist.weight.begin(), hist.weight.end());
  const std::size_t want_ext = static_cast<std::size_t>(
      std::llround(static_cast<double>(count) * ext_fraction));
  std::vector<Entry> out;
  out.reserve(count);
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 200 + 10'000;
  while (out.size() < count && ++attempts < max_attempts) {
    Prefix4 p;
    if (out.size() < want_ext && !parents.empty()) {
      const Prefix4& parent = parents[rng.index(parents.size())];
      if (parent.length() >= 30) continue;
      p = extendPrefix(rng, parent, 4);
    } else {
      const int len = static_cast<int>(rng.weighted(weights));
      if (len == 0) continue;
      p = Prefix4(ip::Ip4Addr(rng.u32()), len);
      if (no_ancestors_in != nullptr && hasAncestorIn(p, *no_ancestors_in)) {
        continue;
      }
    }
    if (!avoid.insert(p).second) continue;
    out.push_back(Entry{p, randomNextHop(rng)});
  }
  if (out.size() < count) {
    throw std::runtime_error("snapshot generation: address pool exhausted");
  }
  return out;
}

std::vector<Prefix4> prefixesOf(const std::vector<Entry>& entries) {
  std::vector<Prefix4> out;
  out.reserve(entries.size());
  for (const Entry& e : entries) out.push_back(e.prefix);
  return out;
}

std::vector<Entry> concat(std::vector<Entry> a, const std::vector<Entry>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

std::size_t scaled(std::size_t n, double scale) {
  const auto v = static_cast<std::size_t>(std::llround(n * scale));
  return std::max<std::size_t>(v, 1);
}

}  // namespace

const Fib4& SnapshotSet::byName(std::string_view name) const {
  for (const Snapshot& s : routers) {
    if (s.name == name) return s.fib;
  }
  throw std::out_of_range("no such snapshot: " + std::string(name));
}

std::vector<SnapshotPair> paperPairs() {
  return {
      {"MAE-East", "MAE-West"}, {"MAE-East", "Paix"},
      {"Paix", "MAE-East"},     {"AT&T-1", "AT&T-2"},
      {"AT&T-2", "AT&T-1"},     {"ISP-B-1", "ISP-B-2"},
      {"ISP-B-2", "ISP-B-1"},
  };
}

std::vector<SnapshotPair> intersectionPairs() {
  return {
      {"MAE-East", "MAE-West"},
      {"MAE-East", "Paix"},
      {"MAE-West", "Paix"},
      {"AT&T-1", "AT&T-2"},
      {"ISP-B-1", "ISP-B-2"},
  };
}

SnapshotSet makePaperSnapshots(std::uint64_t seed, double scale) {
  CLUERT_CHECK(scale > 0.0 && scale <= 1.0) << "scale " << scale;
  Rng rng(seed);

  // --- MAE-East: the big route-server table. Low subprefix fraction keeps
  // the Paix->MAE-East problematic count in the paper's regime (hundreds).
  GenOptions<ip::Ip4Addr> east_opt;
  east_opt.size = scaled(42'123, scale);
  east_opt.histogram = internetLengths1999();
  east_opt.subprefix_fraction = 0.05;
  east_opt.next_hop_count = kNextHopFanout;
  Fib4 east = TableGen<ip::Ip4Addr>::generate(rng, east_opt);

  std::unordered_set<Prefix4> east_set;
  for (const Entry& e : east.entries()) east_set.insert(e.prefix);

  // --- MAE-West: shares 23,382 prefixes with East (Table 3) plus extras of
  // its own; the extras extending East prefixes drive Table 2's 288.
  const auto east_prefixes = east.prefixes();
  std::vector<Entry> west_shared =
      sampleFrom(east_prefixes, rng, scaled(23'382, scale));
  const auto west_shared_prefixes = prefixesOf(west_shared);
  std::unordered_set<Prefix4> avoid_west = east_set;
  std::vector<Entry> west_fresh =
      freshPrefixes(rng, scaled(1'118, scale), 0.26, west_shared_prefixes,
                    avoid_west, &east_set);
  Fib4 west(concat(west_shared, west_fresh));

  // --- Paix: small; almost entirely inside East, and inside West's shared
  // part (so West∩Paix comes out at its Table 3 value). The paper's Table 2
  // reports 411 problematic clues for Paix -> MAE-East — a Paix prefix is
  // problematic there exactly when East holds a more-specific under it, so
  // the sample takes ~411 East "parents" (prefixes with descendants) and
  // fills the rest with East leaves.
  std::unordered_set<Prefix4> west_shared_set(west_shared_prefixes.begin(),
                                              west_shared_prefixes.end());
  std::vector<Prefix4> east_only;
  for (const Prefix4& p : east_prefixes) {
    if (west_shared_set.count(p) == 0) east_only.push_back(p);
  }
  const auto east_trie = east.buildTrie();
  const auto is_parent = [&](const Prefix4& p) {
    const auto* v = east_trie.findVertex(p);
    return v != nullptr && !v->isLeaf();
  };
  std::vector<Prefix4> shared_parents;
  std::vector<Prefix4> shared_leaves;
  for (const Prefix4& p : west_shared_prefixes) {
    (is_parent(p) ? shared_parents : shared_leaves).push_back(p);
  }
  std::vector<Prefix4> east_only_leaves;
  for (const Prefix4& p : east_only) {
    if (!is_parent(p)) east_only_leaves.push_back(p);
  }
  const std::size_t paix_parents = scaled(455, scale);
  std::vector<Entry> paix_entries =
      sampleFrom(shared_parents, rng, paix_parents);
  paix_entries = concat(
      std::move(paix_entries),
      sampleFrom(shared_leaves, rng, scaled(5'814, scale) - paix_parents));
  paix_entries =
      concat(std::move(paix_entries), sampleFrom(east_only_leaves, rng,
                                                 scaled(85, scale)));
  std::unordered_set<Prefix4> avoid_paix = avoid_west;  // east ∪ west
  std::vector<Entry> paix_fresh =
      freshPrefixes(rng, scaled(75, scale), 0.5, prefixesOf(paix_entries),
                    avoid_paix, &east_set);
  Fib4 paix(concat(std::move(paix_entries), paix_fresh));

  // --- AT&T pair: two actual neighbors; AT&T-1 is (nearly) contained in the
  // much larger AT&T-2. The shared core comes first, then each side's
  // extras.
  GenOptions<ip::Ip4Addr> att_opt;
  att_opt.size = scaled(23'381, scale);
  att_opt.histogram = internetLengths1999();
  att_opt.subprefix_fraction = 0.05;
  att_opt.next_hop_count = kNextHopFanout;
  Fib4 att_core = TableGen<ip::Ip4Addr>::generate(rng, att_opt);
  const auto att_core_prefixes = att_core.prefixes();
  std::unordered_set<Prefix4> att_core_set(att_core_prefixes.begin(),
                                           att_core_prefixes.end());
  std::unordered_set<Prefix4> avoid_att = att_core_set;
  // AT&T-2 extras: a small extension fraction of a large extra count yields
  // Table 2's ~547 problematic clues for AT&T-1 -> AT&T-2.
  std::vector<Entry> att2_extras =
      freshPrefixes(rng, scaled(37'094, scale), 0.016, att_core_prefixes,
                    avoid_att, &att_core_set);
  Fib4 att2(concat(std::vector<Entry>(att_core.entries().begin(),
                                      att_core.entries().end()),
                   att2_extras));
  // AT&T-1's 33 own prefixes (absent from AT&T-2).
  std::vector<Entry> att1_extras =
      freshPrefixes(rng, scaled(33, scale), 1.0, att_core_prefixes,
                    avoid_att, &att_core_set);
  Fib4 att1(concat(std::vector<Entry>(att_core.entries().begin(),
                                      att_core.entries().end()),
                   att1_extras));

  // --- ISP-B pair: near-identical twins (intersection 55,540 out of
  // ~56,000 each).
  GenOptions<ip::Ip4Addr> isp_opt;
  isp_opt.size = scaled(55'540, scale);
  isp_opt.histogram = internetLengths1999();
  isp_opt.subprefix_fraction = 0.05;
  isp_opt.next_hop_count = kNextHopFanout;
  Fib4 isp_core = TableGen<ip::Ip4Addr>::generate(rng, isp_opt);
  const auto isp_core_prefixes = isp_core.prefixes();
  std::unordered_set<Prefix4> isp_core_set(isp_core_prefixes.begin(),
                                           isp_core_prefixes.end());
  std::unordered_set<Prefix4> avoid_isp = isp_core_set;
  std::vector<Entry> isp2_extras =
      freshPrefixes(rng, scaled(419, scale), 0.17, isp_core_prefixes,
                    avoid_isp, &isp_core_set);
  Fib4 ispb2(concat(std::vector<Entry>(isp_core.entries().begin(),
                                       isp_core.entries().end()),
                    isp2_extras));
  std::vector<Entry> isp1_extras =
      freshPrefixes(rng, scaled(494, scale), 0.08, isp_core_prefixes,
                    avoid_isp, &isp_core_set);
  Fib4 ispb1(concat(std::vector<Entry>(isp_core.entries().begin(),
                                       isp_core.entries().end()),
                    isp1_extras));

  SnapshotSet set;
  set.routers.push_back(Snapshot{"MAE-East", std::move(east)});
  set.routers.push_back(Snapshot{"MAE-West", std::move(west)});
  set.routers.push_back(Snapshot{"Paix", std::move(paix)});
  set.routers.push_back(Snapshot{"AT&T-1", std::move(att1)});
  set.routers.push_back(Snapshot{"AT&T-2", std::move(att2)});
  set.routers.push_back(Snapshot{"ISP-B-1", std::move(ispb1)});
  set.routers.push_back(Snapshot{"ISP-B-2", std::move(ispb2)});
  return set;
}

}  // namespace cluert::rib
