// The epoch pin/publish/grace protocol, extracted from VersionedTables so
// the *same code* runs in production (Policy = sync::StdSyncPolicy, V =
// TableVersion) and under the model checker (Policy = mc::ModelPolicy, V =
// a two-field payload) — src/mc/harnesses.h enumerates its interleavings
// exhaustively within bounds. Nothing here knows about FIBs or clue tables;
// it is purely the reclamation handshake:
//
//   * one atomic `live_` pointer, read by every worker, swapped by the one
//     updater;
//   * one padded epoch counter per worker slot; odd = pinned. A reader
//     increments its slot (seq_cst), then loads `live_` (seq_cst); the
//     guard's destructor increments again with release.
//   * the updater publishes with a seq_cst exchange, then waits out the
//     grace period: any slot that was odd at swap time may still be reading
//     the retired version — spin (yield -> sleep escalation) until that
//     slot's counter moves. Slots that pin after the swap read the new
//     live pointer and never block the updater.
//
// Memory-ordering argument (the classic store-buffering pair, checked by
// the Mc.EpochPublish harness and justified order-by-order in DESIGN.md
// §10):
//   reader: epoch.fetch_add(seq_cst);  live.load(seq_cst)
//   writer: live.exchange(seq_cst);    epoch.load(seq_cst)
// Sequential consistency on the four accesses forbids the outcome where the
// reader holds the retired version but the writer saw its slot quiescent.
// The guard's exit is a release so the version's reads happen-before the
// counter change the updater observes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/check.h"
#include "common/sync_policy.h"

namespace cluert::rib {

template <typename V, std::size_t MaxWorkers = 32,
          typename Policy = sync::StdSyncPolicy>
class EpochPublication {
 public:
  using AtomicPtr = typename Policy::template Atomic<V*>;
  using AtomicU64 = typename Policy::template Atomic<std::uint64_t>;

  static constexpr std::size_t kMaxWorkers = MaxWorkers;

  EpochPublication() = default;
  EpochPublication(const EpochPublication&) = delete;
  EpochPublication& operator=(const EpochPublication&) = delete;

  // Holds one pinned version; the updater's grace period cannot complete
  // while a guard from an earlier swap is alive.
  class ReadGuard {
   public:
    ReadGuard() = default;
    ReadGuard(V* v, AtomicU64* slot) : v_(v), slot_(slot) {}
    ReadGuard(ReadGuard&& o) noexcept : v_(o.v_), slot_(o.slot_) {
      o.v_ = nullptr;
      o.slot_ = nullptr;
    }
    ReadGuard& operator=(ReadGuard&& o) noexcept {
      if (this != &o) {
        unpin();
        v_ = o.v_;
        slot_ = o.slot_;
        o.v_ = nullptr;
        o.slot_ = nullptr;
      }
      return *this;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() { unpin(); }

    const V& operator*() const { return *v_; }
    const V* operator->() const { return v_; }
    explicit operator bool() const { return v_ != nullptr; }

   private:
    void unpin() {
      // Release: every read of *v_ happens-before the counter turns even.
      if (slot_ != nullptr) slot_->fetch_add(1, std::memory_order_release);
    }
    V* v_ = nullptr;
    AtomicU64* slot_ = nullptr;
  };

  // -- data plane (any worker thread) ---------------------------------------

  ReadGuard pin(std::size_t worker) {
    CLUERT_CHECK(worker < kMaxWorkers)
        << "worker " << worker << " exceeds the " << kMaxWorkers
        << "-slot epoch array";
    AtomicU64& slot = epochs_[worker].v;
    // Odd = pinned. seq_cst orders this before the live_ load against the
    // updater's seq_cst exchange/scan (see file comment).
    slot.fetch_add(1, std::memory_order_seq_cst);
    return ReadGuard(live_.load(std::memory_order_seq_cst), &slot);
  }

  // -- control plane (the single updater thread) ----------------------------

  // First publication / control-plane peek. seq_cst: pairs with pin()'s
  // load (see file comment); lint_cluert.py bans naked live-pointer access
  // outside this file, PinnedResolver and VersionedTables.
  void storeLive(V* v) { live_.store(v, std::memory_order_seq_cst); }
  V* loadLive() const { return live_.load(std::memory_order_seq_cst); }

  // The swap: returns the retired version, which must not be touched until
  // waitForReaders() returns.
  V* exchangeLive(V* next) {
    return live_.exchange(next, std::memory_order_seq_cst);
  }

  // Grace period: a slot that was odd (pinned) at swap time may still be
  // reading the retired version; wait until its counter moves. Slots that
  // are even, or that pin *after* the swap (they see the new live pointer),
  // never block.
  // Waiting escalates yield -> sleep: a yielding thread is still runnable,
  // and on a host with fewer cores than threads it keeps winning timeslices
  // the pinned reader needs to finish its batch — the sleep hands the core
  // over outright. Grace is off the data path, so the extra latency is free.
  void waitForReaders() {
    for (EpochSlot& s : epochs_) {
      const std::uint64_t e = s.v.load(std::memory_order_seq_cst);
      if ((e & 1) == 0) continue;
      std::uint64_t streak = 0;
      while (s.v.load(std::memory_order_acquire) == e) {
        if (++streak < 16) {
          Policy::yield();
        } else {
          Policy::sleepUs(50);
        }
      }
    }
  }

 private:
  struct alignas(64) EpochSlot {
    AtomicU64 v{0};
  };

  AtomicPtr live_{nullptr};
  EpochSlot epochs_[kMaxWorkers];
};

}  // namespace cluert::rib
