// Synthetic forwarding-table generation.
//
// Substitute for the paper's 1999 router snapshots (MAE-East, MAE-West,
// Paix, AT&T, ISP-B), which are not available. The generator controls the
// two properties the clue mechanism actually depends on:
//   * a realistic prefix-length distribution (mass at /24, secondary mass
//     around /16-/19, nesting of more-specifics inside aggregates);
//   * tunable *similarity between neighboring tables* — shared prefixes,
//     fresh independent prefixes, and fresh prefixes that strictly extend
//     shared ones (the latter are exactly what creates "problematic" clues
//     for which Claim 1 fails).
#pragma once

#include <array>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "rib/fib.h"

namespace cluert::rib {

// Weight per prefix length; lengths with zero weight are never drawn.
template <int W>
struct LengthHistogram {
  std::array<double, W + 1> weight{};

  double total() const {
    double t = 0;
    for (double w : weight) t += w;
    return t;
  }
};

// The shape of 1999 BGP tables (cf. the measurement literature of the time):
// a dominant spike at /24, a broad shelf at /16-/23, thin classful tails.
LengthHistogram<32> internetLengths1999();

// A plausible IPv6 shape for the paper's "assuming IPv6 uses aggregation in
// a way similar to IPv4" (§6): mass between /32 and /64, spike at /48.
LengthHistogram<128> internetLengths6();

template <typename A>
struct GenOptions {
  std::size_t size = 10'000;
  LengthHistogram<A::kBits> histogram;
  NextHop next_hop_count = 16;
  // Fraction of prefixes created by extending an already generated prefix by
  // 1..8 bits — produces the nested more-specifics real tables have.
  double subprefix_fraction = 0.30;
};

template <typename A>
struct NeighborOptions {
  std::size_t shared = 0;  // prefixes sampled from the base table
  std::size_t fresh = 0;   // prefixes absent from the base table
  // Of the fresh ones, the fraction that strictly extends a shared prefix.
  // These are the receiver-side more-specifics the sender does not know —
  // each is a condition-C1 candidate, i.e. a source of problematic clues.
  double fresh_extension_fraction = 0.5;
  NextHop next_hop_count = 16;
};

template <typename A>
class TableGen {
 public:
  using PrefixT = ip::Prefix<A>;
  using EntryT = trie::Match<A>;

  static Fib<A> generate(Rng& rng, const GenOptions<A>& opt);

  // Derives a table resembling a neighbor of `base`: |result ∩ base| ==
  // shared, |result \ base| == fresh (up to exhaustion of the address pool).
  static Fib<A> deriveNeighbor(const Fib<A>& base, Rng& rng,
                               const NeighborOptions<A>& opt);

 private:
  static PrefixT randomPrefix(Rng& rng,
                              const LengthHistogram<A::kBits>& hist);
  static A randomAddress(Rng& rng);
  static PrefixT extend(Rng& rng, const PrefixT& p, int max_extra);
};

}  // namespace cluert::rib
