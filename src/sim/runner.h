// The differential oracle runner (DESIGN.md §8): replays one Scenario
// through every requested {Method} × {Simple, Advance} × {hash, indexed}
// configuration and asserts byte-identical next hops against a brute-force
// BMP oracle, with the src/check/ structural validators run at every
// published version (the initial build and after each churn step).
//
// The oracle is computed once per (packet, table-version) — all configs
// share the same churn schedule, so the expected answer sequence is a pure
// function of the scenario — then each config replays the stream
// independently: fresh suite, fresh clue table, learning enabled, faults
// materialised per packet from the scenario's deterministic aux draws.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "check/validate.h"
#include "core/distributed_lookup.h"
#include "sim/scenario.h"

namespace cluert::sim {

template <typename A>
struct RunOptions {
  std::uint32_t methods = lookup::kAllMethodsMask;  // lookup::methodBit mask
  bool simple = true;
  bool advance = true;
  bool hash = true;
  bool indexed = true;
  // Run the structural validators (trie, Patricia equivalence, clue table)
  // at every published version of every config. O(entries²)-ish; the CLI
  // turns it off for the million-packet sweeps.
  bool validate_publishes = true;
  // §3.5 cache entries per port (0 disables; a nonzero value exercises the
  // cache-invalidation-across-refresh paths).
  std::size_t cache_entries = 64;
  std::size_t max_mismatches = 8;  // stop a config after this many
  // Test hook: corrupts a freshly built port before any packet runs (the
  // shrinker tests seed a deliberately broken engine through this).
  std::function<void(core::CluePort<A>&)> sabotage;
};

struct SimConfig {
  lookup::Method method;
  lookup::ClueMode mode;
  bool indexed = false;
};

inline std::string configName(const SimConfig& c) {
  std::string name(lookup::methodName(c.method));
  name += '/';
  name += lookup::clueModeName(c.mode);
  name += c.indexed ? "/indexed" : "/hash";
  return name;
}

struct Mismatch {
  std::size_t packet = 0;
  SimConfig config;
  Fault fault = Fault::kNone;
  std::string detail;  // dest, expected vs got
};

struct RunResult {
  std::uint64_t generated_packets = 0;  // |scenario.packets|
  std::uint64_t packets_processed = 0;  // summed over configs
  std::uint64_t strict_checked = 0;     // oracle-asserted packet runs
  std::uint64_t faults_injected = 0;    // per generated stream
  std::uint64_t publishes = 0;          // churn steps applied, over configs
  std::uint64_t configs = 0;
  std::vector<Mismatch> mismatches;
  check::Report check_report;  // validator findings at published versions

  bool ok() const { return mismatches.empty() && check_report.ok(); }

  std::string summary() const {
    std::string s = std::to_string(configs) + " configs, " +
                    std::to_string(generated_packets) + " generated packets, " +
                    std::to_string(packets_processed) + " processed, " +
                    std::to_string(strict_checked) + " oracle-checked, " +
                    std::to_string(faults_injected) + " faults, " +
                    std::to_string(mismatches.size()) + " mismatches, " +
                    std::to_string(check_report.size()) +
                    " invariant violations";
    return s;
  }
};

namespace detail {

template <typename A>
std::string describe(const std::optional<trie::Match<A>>& m) {
  if (!m) return "(none)";
  return m->prefix.toString() + "->" + std::to_string(m->next_hop);
}

// Brute-force longest-prefix match over a flat entry span — the reference
// every engine/mode/organisation must agree with.
template <typename A>
std::optional<trie::Match<A>> bruteBmp(
    std::span<const trie::Match<A>> entries, const A& address) {
  const trie::Match<A>* best = nullptr;
  for (const auto& e : entries) {
    if (e.prefix.matches(address) &&
        (best == nullptr || e.prefix.length() > best->prefix.length())) {
      best = &e;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

// Expected oracle answer per packet index: walks the stream once, applying
// local churn to a mirrored Fib at the scenario's publish points. Neighbor
// churn never changes the receiver's BMPs.
template <typename A>
std::vector<std::optional<trie::Match<A>>> oracleRow(const Scenario<A>& s) {
  std::vector<std::optional<trie::Match<A>>> expected;
  expected.reserve(s.packets.size());
  rib::Fib<A> recv{std::vector<trie::Match<A>>(s.receiver)};
  std::size_t next_step = 0;
  for (std::size_t i = 0; i < s.packets.size(); ++i) {
    while (next_step < s.churn.size() &&
           s.churn[next_step].after_packet <= i) {
      if (!s.churn[next_step].neighbor) {
        rib::applyDelta(recv, s.churn[next_step].delta);
      }
      ++next_step;
    }
    expected.push_back(bruteBmp<A>(recv.entries(), s.packets[i].dest));
  }
  return expected;
}

// Materialises the clue header one packet carries under `fault`, given the
// sender's current and initial tries. `indexer` non-null selects the
// indexing technique (§3.3.1): genuine clues ship their enumerated index;
// length-corrupting faults keep the GENUINE clue's index, modelling a header
// whose length bits were damaged in flight while the index still names the
// sender's entry — the stored-clue verification must catch the skew.
template <typename A>
core::ClueField makeField(const SimPacket<A>& p,
                          const trie::BinaryTrie<A>& t1,
                          const trie::BinaryTrie<A>& t1_initial,
                          core::ClueIndexer<A>* indexer,
                          mem::AccessCounter& scratch) {
  using core::ClueField;
  const auto genuine = t1.lookup(p.dest, scratch);
  const auto withIndex = [&](ClueField f) {
    if (indexer != nullptr && f.present && genuine) {
      if (const auto idx = indexer->indexOf(
              ip::Prefix<A>(p.dest, genuine->prefix.length()))) {
        f.index = *idx;
      }
    }
    return f;
  };
  switch (p.fault) {
    case Fault::kNone:
      return withIndex(genuine ? ClueField::of(genuine->prefix.length())
                               : ClueField::none());
    case Fault::kNoClue:
      return ClueField::none();
    case Fault::kTruncated: {
      if (!genuine) return ClueField::none();
      const int len = 1 + static_cast<int>(
                              p.aux % static_cast<std::uint32_t>(
                                          genuine->prefix.length()));
      return withIndex(ClueField::of(len));
    }
    case Fault::kJunk: {
      ClueField f;
      f.present = true;
      f.length = static_cast<std::uint8_t>(p.aux & 0xff);
      return withIndex(f);
    }
    case Fault::kStale: {
      const auto old = t1_initial.lookup(p.dest, scratch);
      return withIndex(old ? ClueField::of(old->prefix.length())
                           : ClueField::none());
    }
    case Fault::kWrongIndex: {
      ClueField f = genuine ? ClueField::of(genuine->prefix.length())
                            : ClueField::none();
      if (indexer != nullptr && f.present) {
        f.index = static_cast<std::uint16_t>(p.aux & 0xffff);
      }
      return f;
    }
  }
  return ClueField::none();
}

}  // namespace detail

// Structural validation of one config's live state: trie, Patricia
// equivalence, and the clue table checked field-by-field against a fresh
// re-analysis (t1 only for Advance, matching the validator's mode switch).
template <typename A>
check::Report validateConfigState(const lookup::LookupSuite<A>& suite,
                                  const core::CluePort<A>& port,
                                  const trie::BinaryTrie<A>* t1_for_advance) {
  check::Report report;
  report.merge(check::validate(suite.binaryTrie()));
  report.merge(check::validateEquivalent(suite.binaryTrie(),
                                         suite.patricia()));
  report.merge(check::validate(port.hashTable(), suite.binaryTrie(),
                               t1_for_advance, &suite.patricia()));
  if (port.options().indexed) {
    report.merge(check::validate(port.indexedTable(), suite.binaryTrie(),
                                 t1_for_advance, &suite.patricia()));
  }
  return report;
}

template <typename A>
RunResult runScenario(const Scenario<A>& s, const RunOptions<A>& opt = {}) {
  using MatchT = trie::Match<A>;
  RunResult result;
  result.generated_packets = s.packets.size();
  result.faults_injected = s.faultCount();

  const auto expected = detail::oracleRow(s);

  trie::BinaryTrie<A> t1_initial;
  for (const auto& e : s.sender) t1_initial.insert(e.prefix, e.next_hop);
  std::vector<ip::Prefix<A>> sender_clues;
  sender_clues.reserve(s.sender.size());
  for (const auto& e : s.sender) sender_clues.push_back(e.prefix);

  std::vector<SimConfig> configs;
  for (const lookup::Method m : lookup::kExtendedMethods) {
    if ((opt.methods & lookup::methodBit(m)) == 0) continue;
    for (const lookup::ClueMode mode :
         {lookup::ClueMode::kSimple, lookup::ClueMode::kAdvance}) {
      if (mode == lookup::ClueMode::kSimple && !opt.simple) continue;
      if (mode == lookup::ClueMode::kAdvance && !opt.advance) continue;
      for (const bool indexed : {false, true}) {
        if (indexed ? !opt.indexed : !opt.hash) continue;
        configs.push_back({m, mode, indexed});
      }
    }
  }
  result.configs = configs.size();

  for (const SimConfig& cfg : configs) {
    // Fresh world per config: suite over the receiver table (only this
    // config's engine materialised), mutable sender trie, learning port.
    lookup::SuiteOptions sopt;
    sopt.methods = lookup::methodBit(cfg.method);
    lookup::LookupSuite<A> suite(s.receiver, sopt);
    trie::BinaryTrie<A> t1;
    for (const auto& e : s.sender) t1.insert(e.prefix, e.next_hop);

    const bool advance = cfg.mode == lookup::ClueMode::kAdvance;
    typename core::CluePort<A>::Options popt;
    popt.method = cfg.method;
    popt.mode = cfg.mode;
    popt.indexed = cfg.indexed;
    popt.cache_entries = opt.cache_entries;
    popt.expected_clues = s.sender.size() + 16;
    core::CluePort<A> port(suite, advance ? &t1 : nullptr, popt);

    core::ClueIndexer<A> indexer;
    if (cfg.indexed) {
      port.precomputeIndexed(sender_clues, indexer);
    } else {
      port.precompute(sender_clues);
    }
    if (opt.sabotage) opt.sabotage(port);

    const trie::BinaryTrie<A>* t1_check = advance ? &t1 : nullptr;
    if (opt.validate_publishes) {
      result.check_report.merge(validateConfigState(suite, port, t1_check));
    }

    mem::AccessCounter acc;
    std::size_t next_step = 0;
    std::size_t config_mismatches = 0;
    for (std::size_t i = 0; i < s.packets.size(); ++i) {
      // Mid-stream version swaps: apply every delta scheduled before i.
      while (next_step < s.churn.size() &&
             s.churn[next_step].after_packet <= i) {
        const ChurnStep<A>& step = s.churn[next_step];
        ++next_step;
        ++result.publishes;
        if (step.neighbor) {
          for (const auto& p : step.delta.removed) t1.erase(p);
          for (const auto& e : step.delta.added) {
            t1.insert(e.prefix, e.next_hop);
          }
          for (const auto& e : step.delta.rerouted) {
            t1.insert(e.prefix, e.next_hop);
          }
          if (advance) {
            // Claim-1 annotations and related entries must track the
            // sender's new view; Simple entries don't read t1 at all.
            for (const auto& p : step.delta.removed) {
              port.onNeighborRouteChanged(p);
            }
            for (const auto& e : step.delta.added) {
              port.onNeighborRouteChanged(e.prefix);
            }
            for (const auto& e : step.delta.rerouted) {
              port.onNeighborRouteChanged(e.prefix);
            }
          }
        } else {
          std::vector<MatchT> ups(step.delta.added);
          ups.insert(ups.end(), step.delta.rerouted.begin(),
                     step.delta.rerouted.end());
          suite.applyRouteDelta(step.delta.removed, ups);
          for (const auto& p : step.delta.removed) {
            port.onLocalRouteChanged(p);
          }
          for (const auto& e : ups) port.onLocalRouteChanged(e.prefix);
        }
        if (opt.validate_publishes) {
          result.check_report.merge(
              validateConfigState(suite, port, t1_check));
        }
      }

      const SimPacket<A>& p = s.packets[i];
      const core::ClueField field = detail::makeField(
          p, t1, t1_initial, cfg.indexed ? &indexer : nullptr, acc);
      const auto r = port.process(p.dest, field, acc);
      ++result.packets_processed;

      if (!oracleStrict(p.fault, cfg.mode)) continue;
      ++result.strict_checked;
      const auto& want = expected[i];
      const bool agree =
          want.has_value() == r.match.has_value() &&
          (!want || (want->prefix == r.match->prefix &&
                     want->next_hop == r.match->next_hop));
      if (agree) continue;
      Mismatch m;
      m.packet = i;
      m.config = cfg;
      m.fault = p.fault;
      m.detail = "dest " + p.dest.toString() + " fault " +
                 std::string(faultName(p.fault)) + ": expected " +
                 detail::describe<A>(want) + " got " +
                 detail::describe<A>(r.match);
      result.mismatches.push_back(std::move(m));
      if (++config_mismatches >= opt.max_mismatches) break;
    }
  }
  return result;
}

}  // namespace cluert::sim
