// Umbrella header for the scenario simulator (DESIGN.md §8):
//
//   auto s = cluert::sim::generateScenario<ip::Ip4Addr>(seed);
//   auto r = cluert::sim::runScenario(s);
//   if (!r.ok()) {
//     auto small = cluert::sim::shrinkScenario(s, pred);
//     cluert::sim::writeFile("tests/corpus/repro.scn",
//                            cluert::sim::serializeScenario(small));
//   }
#pragma once

#include "sim/corpus.h"   // IWYU pragma: export
#include "sim/runner.h"   // IWYU pragma: export
#include "sim/scenario.h" // IWYU pragma: export
#include "sim/shrink.h"   // IWYU pragma: export
