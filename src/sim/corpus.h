// Corpus persistence for scenarios (DESIGN.md §8 "Corpus workflow").
//
// A corpus file is a line-oriented text serialization of one Scenario —
// the format every shrunk repro is written in, and what the CorpusReplay
// ctest and `sim_run --replay` read back. The format is versioned; parsers
// reject unknown versions rather than guessing.
//
//   cluert-scenario v1 ipv4
//   seed 12345
//   sender <n>        then n lines "prefix next_hop"
//   receiver <n>      then n lines "prefix next_hop"
//   churn <n>         then per step:
//     <local|neighbor> <after_packet> <removed> <added> <rerouted>
//     ... removed prefixes, added entries, rerouted entries, one per line
//   packets <n>       then n lines "dest fault aux"
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/scenario.h"

namespace cluert::sim {

std::optional<Fault> faultFromName(std::string_view name);

// Family tag for dispatching a file to the right parser instantiation
// ("ipv4", "ipv6", or empty when the header is unreadable).
std::string_view scenarioFamily(std::string_view text);

// Sorted list of corpus files (extension .scn) under `dir`; empty if the
// directory does not exist.
std::vector<std::string> listCorpusFiles(const std::string& dir);

std::optional<std::string> readFile(const std::string& path);
bool writeFile(const std::string& path, std::string_view content);

namespace detail {

template <typename A>
constexpr std::string_view familyTag() {
  return A::kBits == 32 ? "ipv4" : "ipv6";
}

template <typename A>
void putEntries(std::ostringstream& os,
                const std::vector<trie::Match<A>>& entries) {
  for (const auto& e : entries) {
    os << e.prefix.toString() << ' ' << e.next_hop << '\n';
  }
}

class LineReader {
 public:
  explicit LineReader(std::string_view text) : text_(text) {}

  // Next non-empty, non-comment line; nullopt at end of input.
  std::optional<std::string_view> next() {
    while (pos_ < text_.size()) {
      std::size_t eol = text_.find('\n', pos_);
      if (eol == std::string_view::npos) eol = text_.size();
      std::string_view line = text_.substr(pos_, eol - pos_);
      pos_ = eol + 1;
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (line.empty() || line.front() == '#') continue;
      return line;
    }
    return std::nullopt;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

// Splits on single spaces. Returns empty vector only for an empty line.
std::vector<std::string_view> fields(std::string_view line);

std::optional<std::uint64_t> parseU64(std::string_view s);

template <typename A>
std::optional<trie::Match<A>> parseEntry(std::string_view line) {
  const auto f = fields(line);
  if (f.size() != 2) return std::nullopt;
  const auto prefix = ip::Prefix<A>::parse(f[0]);
  const auto nh = parseU64(f[1]);
  if (!prefix || !nh) return std::nullopt;
  return trie::Match<A>{*prefix, static_cast<NextHop>(*nh)};
}

}  // namespace detail

template <typename A>
std::string serializeScenario(const Scenario<A>& s) {
  std::ostringstream os;
  os << "cluert-scenario v1 " << detail::familyTag<A>() << '\n';
  os << "seed " << s.seed << '\n';
  os << "sender " << s.sender.size() << '\n';
  detail::putEntries(os, s.sender);
  os << "receiver " << s.receiver.size() << '\n';
  detail::putEntries(os, s.receiver);
  os << "churn " << s.churn.size() << '\n';
  for (const auto& step : s.churn) {
    os << (step.neighbor ? "neighbor" : "local") << ' ' << step.after_packet
       << ' ' << step.delta.removed.size() << ' ' << step.delta.added.size()
       << ' ' << step.delta.rerouted.size() << '\n';
    for (const auto& p : step.delta.removed) os << p.toString() << '\n';
    detail::putEntries(os, step.delta.added);
    detail::putEntries(os, step.delta.rerouted);
  }
  os << "packets " << s.packets.size() << '\n';
  for (const auto& p : s.packets) {
    os << p.dest.toString() << ' ' << faultName(p.fault) << ' ' << p.aux
       << '\n';
  }
  return os.str();
}

template <typename A>
std::optional<Scenario<A>> parseScenario(std::string_view text) {
  detail::LineReader in(text);

  const auto header = in.next();
  if (!header) return std::nullopt;
  {
    const auto f = detail::fields(*header);
    if (f.size() != 3 || f[0] != "cluert-scenario" || f[1] != "v1" ||
        f[2] != detail::familyTag<A>()) {
      return std::nullopt;
    }
  }

  Scenario<A> s;
  const auto expectCount = [&](std::string_view key)
      -> std::optional<std::size_t> {
    const auto line = in.next();
    if (!line) return std::nullopt;
    const auto f = detail::fields(*line);
    if (f.size() != 2 || f[0] != key) return std::nullopt;
    const auto n = detail::parseU64(f[1]);
    if (!n || *n > (1u << 24)) return std::nullopt;  // sanity bound
    return static_cast<std::size_t>(*n);
  };
  const auto readEntries =
      [&](std::size_t n, std::vector<trie::Match<A>>& out) -> bool {
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto line = in.next();
      if (!line) return false;
      const auto e = detail::parseEntry<A>(*line);
      if (!e) return false;
      out.push_back(*e);
    }
    return true;
  };

  {
    const auto line = in.next();
    if (!line) return std::nullopt;
    const auto f = detail::fields(*line);
    if (f.size() != 2 || f[0] != "seed") return std::nullopt;
    const auto seed = detail::parseU64(f[1]);
    if (!seed) return std::nullopt;
    s.seed = *seed;
  }

  const auto n_sender = expectCount("sender");
  if (!n_sender || !readEntries(*n_sender, s.sender)) return std::nullopt;
  const auto n_receiver = expectCount("receiver");
  if (!n_receiver || !readEntries(*n_receiver, s.receiver)) {
    return std::nullopt;
  }

  const auto n_churn = expectCount("churn");
  if (!n_churn) return std::nullopt;
  for (std::size_t i = 0; i < *n_churn; ++i) {
    const auto line = in.next();
    if (!line) return std::nullopt;
    const auto f = detail::fields(*line);
    if (f.size() != 5) return std::nullopt;
    ChurnStep<A> step;
    if (f[0] == "neighbor") {
      step.neighbor = true;
    } else if (f[0] != "local") {
      return std::nullopt;
    }
    const auto after = detail::parseU64(f[1]);
    const auto nr = detail::parseU64(f[2]);
    const auto na = detail::parseU64(f[3]);
    const auto nu = detail::parseU64(f[4]);
    if (!after || !nr || !na || !nu || *nr > (1u << 20) || *na > (1u << 20) ||
        *nu > (1u << 20)) {
      return std::nullopt;
    }
    step.after_packet = static_cast<std::size_t>(*after);
    step.delta.removed.reserve(*nr);
    for (std::size_t k = 0; k < *nr; ++k) {
      const auto pl = in.next();
      if (!pl) return std::nullopt;
      const auto p = ip::Prefix<A>::parse(*pl);
      if (!p) return std::nullopt;
      step.delta.removed.push_back(*p);
    }
    if (!readEntries(*na, step.delta.added)) return std::nullopt;
    if (!readEntries(*nu, step.delta.rerouted)) return std::nullopt;
    s.churn.push_back(std::move(step));
  }

  const auto n_packets = expectCount("packets");
  if (!n_packets) return std::nullopt;
  s.packets.reserve(*n_packets);
  for (std::size_t i = 0; i < *n_packets; ++i) {
    const auto line = in.next();
    if (!line) return std::nullopt;
    const auto f = detail::fields(*line);
    if (f.size() != 3) return std::nullopt;
    const auto dest = A::parse(f[0]);
    const auto fault = faultFromName(f[1]);
    const auto aux = detail::parseU64(f[2]);
    if (!dest || !fault || !aux.has_value() || *aux > 0xffffffffull) {
      return std::nullopt;
    }
    s.packets.push_back(SimPacket<A>{
        *dest, *fault, static_cast<std::uint32_t>(*aux)});
  }
  return s;
}

}  // namespace cluert::sim
