// Scenario shrinker (DESIGN.md §8 "Shrink algorithm"): given a scenario a
// predicate calls failing, produce a smaller scenario the predicate still
// calls failing. Greedy delta-debugging: chunked removal passes over every
// list the scenario owns (packets, churn steps, per-delta routes, receiver
// and sender entries), then per-packet simplification (zero trailing
// destination bits, zero the aux draw), iterated to a fixpoint under an
// evaluation budget.
//
// The predicate is arbitrary — the standard one is
// `[&](const Scenario<A>& s) { return !runScenario(s, opt).ok(); }` — so the
// shrinker also minimises against sabotaged engines (shrink_test.cc) and
// crash predicates.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>

#include "sim/scenario.h"

namespace cluert::sim {

template <typename A>
using FailPredicate = std::function<bool(const Scenario<A>&)>;

struct ShrinkOptions {
  std::size_t max_rounds = 10;   // full fixpoint iterations
  std::size_t max_evals = 4000;  // total predicate invocations
};

struct ShrinkStats {
  std::size_t evals = 0;
  std::size_t rounds = 0;
};

namespace detail {

// One chunked-removal sweep over the vector `get(s)` returns: keep every
// removal under which the scenario still fails. Classic ddmin chunk
// halving, stopping at single elements. Generic over the scenario type so
// topo::TopoScenario (topo/scenario.h) shrinks through the same machinery.
template <typename S, typename GetFn>
bool chunkShrink(S& s, const std::function<bool(const S&)>& fails,
                 const GetFn& get, ShrinkStats& stats,
                 const ShrinkOptions& opt) {
  bool shrunk_any = false;
  std::size_t chunk = std::max<std::size_t>(1, get(s).size() / 2);
  while (true) {
    bool removed = false;
    std::size_t start = 0;
    while (start < get(s).size()) {
      if (stats.evals >= opt.max_evals) return shrunk_any;
      S candidate = s;
      auto& vec = get(candidate);
      const std::size_t end = std::min(vec.size(), start + chunk);
      vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(start),
                vec.begin() + static_cast<std::ptrdiff_t>(end));
      ++stats.evals;
      if (fails(candidate)) {
        s = std::move(candidate);
        removed = true;
        shrunk_any = true;
        // Same start: the next chunk slid into this position.
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !removed) return shrunk_any;
    if (chunk > 1) chunk = std::max<std::size_t>(1, chunk / 2);
  }
}

// Tries one whole-scenario mutation; keeps it if still failing.
template <typename S, typename MutFn>
bool tryMutation(S& s, const std::function<bool(const S&)>& fails,
                 const MutFn& mut, ShrinkStats& stats,
                 const ShrinkOptions& opt) {
  if (stats.evals >= opt.max_evals) return false;
  S candidate = s;
  if (!mut(candidate)) return false;  // mutation not applicable / no-op
  ++stats.evals;
  if (!fails(candidate)) return false;
  s = std::move(candidate);
  return true;
}

}  // namespace detail

// Shrinks `failing` (which must satisfy `fails`) toward a minimal failing
// scenario. Returns the smallest failing scenario found; `stats_out`
// (optional) reports the work done. The result is guaranteed to still
// satisfy `fails` — every kept step was re-verified.
template <typename A>
Scenario<A> shrinkScenario(Scenario<A> failing, const FailPredicate<A>& fails,
                           const ShrinkOptions& opt = {},
                           ShrinkStats* stats_out = nullptr) {
  ShrinkStats stats;
  for (std::size_t round = 0; round < opt.max_rounds; ++round) {
    stats.rounds = round + 1;
    bool progress = false;

    // Structural passes, coarsest lists first: dropping one packet often
    // makes whole churn steps and table regions removable.
    progress |= detail::chunkShrink(
        failing, fails, [](Scenario<A>& s) -> auto& { return s.packets; },
        stats, opt);
    progress |= detail::chunkShrink(
        failing, fails, [](Scenario<A>& s) -> auto& { return s.churn; },
        stats, opt);
    for (std::size_t k = 0; k < failing.churn.size(); ++k) {
      progress |= detail::chunkShrink(
          failing, fails,
          [k](Scenario<A>& s) -> auto& { return s.churn[k].delta.removed; },
          stats, opt);
      progress |= detail::chunkShrink(
          failing, fails,
          [k](Scenario<A>& s) -> auto& { return s.churn[k].delta.added; },
          stats, opt);
      progress |= detail::chunkShrink(
          failing, fails,
          [k](Scenario<A>& s) -> auto& { return s.churn[k].delta.rerouted; },
          stats, opt);
    }
    progress |= detail::chunkShrink(
        failing, fails, [](Scenario<A>& s) -> auto& { return s.receiver; },
        stats, opt);
    progress |= detail::chunkShrink(
        failing, fails, [](Scenario<A>& s) -> auto& { return s.sender; },
        stats, opt);

    // Pull churn steps toward the front of the stream: packets before a
    // step's publish point only exist to keep the step applied in time, so
    // halving after_packet (toward 0) is what lets the packet pass above
    // delete them.
    for (std::size_t k = 0; k < failing.churn.size(); ++k) {
      for (int attempt = 0; attempt < 2; ++attempt) {
        progress |= detail::tryMutation(
            failing, fails,
            [k, attempt](Scenario<A>& s) {
              std::size_t& ap = s.churn[k].after_packet;
              const std::size_t target = attempt == 0 ? 0 : ap / 2;
              if (ap == target) return false;
              ap = target;
              return true;
            },
            stats, opt);
      }
    }

    // Value passes: shorten addresses (zero trailing bits — shorter repro
    // to read, and often collapses distinct packets) and zero the aux draw.
    for (std::size_t i = 0; i < failing.packets.size(); ++i) {
      for (const int keep : {8, 16, 24, 48, 96}) {
        if (keep >= A::kBits) break;
        progress |= detail::tryMutation(
            failing, fails,
            [i, keep](Scenario<A>& s) {
              const A cut = ip::Prefix<A>(s.packets[i].dest, keep).addr();
              if (cut == s.packets[i].dest) return false;
              s.packets[i].dest = cut;
              return true;
            },
            stats, opt);
      }
      progress |= detail::tryMutation(
          failing, fails,
          [i](Scenario<A>& s) {
            if (s.packets[i].aux == 0) return false;
            s.packets[i].aux = 0;
            return true;
          },
          stats, opt);
    }

    if (!progress || stats.evals >= opt.max_evals) break;
  }
  if (stats_out != nullptr) *stats_out = stats;
  return failing;
}

}  // namespace cluert::sim
