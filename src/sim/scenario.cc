#include "sim/scenario.h"

namespace cluert::sim {

std::string_view faultName(Fault f) {
  switch (f) {
    case Fault::kNone:
      return "none";
    case Fault::kNoClue:
      return "no-clue";
    case Fault::kTruncated:
      return "truncated";
    case Fault::kJunk:
      return "junk";
    case Fault::kStale:
      return "stale";
    case Fault::kWrongIndex:
      return "wrong-index";
  }
  return "?";
}

bool oracleStrict(Fault f, lookup::ClueMode mode) {
  if (mode != lookup::ClueMode::kAdvance) return true;
  switch (f) {
    case Fault::kTruncated:
    case Fault::kJunk:
    case Fault::kStale:
      // These break the "clue == sender's current BMP" contract Claim 1
      // reasons from; Advance runs them for robustness only.
      return false;
    default:
      return true;
  }
}

}  // namespace cluert::sim
