// Deterministic scenario engine (DESIGN.md §8): seed-reproducible random
// scenarios for the differential harness. A Scenario is a fully materialised
// value — sender table, receiver table, churn schedule, packet stream with
// per-packet fault injection — so it can be serialized to a corpus file,
// replayed bit-for-bit, and shrunk by deleting parts.
//
// The generator draws every shape from one seeded Rng: table sizes and
// nesting via rib::TableGen, churn as FibDelta sequences against a mirrored
// Fib (so every delta is consistent with the table state it applies to),
// and packets biased toward covered addresses with a weighted fault draw.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "ip/prefix.h"
#include "lookup/lookup_method.h"
#include "rib/fib.h"
#include "rib/fib_diff.h"
#include "rib/table_gen.h"
#include "trie/binary_trie.h"

namespace cluert::sim {

// Fault taxonomy (DESIGN.md §8 "Fault taxonomy"). Every fault mutates only
// the clue header the packet carries — the destination address is always
// genuine, so a brute-force BMP oracle over the receiver table stays
// well-defined for every packet.
enum class Fault : std::uint8_t {
  kNone = 0,    // genuine clue: the sender's current BMP length
  kNoClue,      // header option absent (§5.3 heterogeneous networks)
  kTruncated,   // length drawn in [1, true BMP length] — a partial clue
  kJunk,        // arbitrary 8-bit length; > W decodes as absent
  kStale,       // BMP length under the initial (pre-churn) sender table
  kWrongIndex,  // genuine length, random 16-bit index (§3.3.1 robustness)
};
inline constexpr std::size_t kFaultCount = 6;

std::string_view faultName(Fault f);

// Whether the brute-force oracle must agree exactly for a packet carrying
// this fault under the given clue mode. Simple mode is safe under *any* clue
// that is a prefix of the destination (every fault above reconstructs to
// one), so every fault is strict. Advance's Claim-1 pruning assumes the clue
// is the sender's genuine current BMP; faults that void that contract
// (truncated / junk / stale) are exercised for no-crash robustness but not
// held to the oracle. kWrongIndex stays strict everywhere: the stored-clue
// verification turns a bad index into a miss (§3.3.1).
bool oracleStrict(Fault f, lookup::ClueMode mode);

template <typename A>
struct SimPacket {
  A dest;
  Fault fault = Fault::kNone;
  // Deterministic randomness for the fault (junk length, truncation point,
  // wrong index), drawn at generation time so replay needs no Rng.
  std::uint32_t aux = 0;
};

// One churn step: a FibDelta against the receiver (local) or sender
// (neighbor) table, applied once `after_packet` packets of the stream have
// been processed — a mid-stream version swap.
template <typename A>
struct ChurnStep {
  bool neighbor = false;
  std::size_t after_packet = 0;
  rib::FibDelta<A> delta;
};

template <typename A>
struct Scenario {
  std::uint64_t seed = 0;
  std::vector<trie::Match<A>> sender;
  std::vector<trie::Match<A>> receiver;
  std::vector<ChurnStep<A>> churn;  // sorted by after_packet
  std::vector<SimPacket<A>> packets;

  std::size_t faultCount() const {
    std::size_t n = 0;
    for (const auto& p : packets) n += p.fault != Fault::kNone ? 1 : 0;
    return n;
  }
};

using Scenario4 = Scenario<ip::Ip4Addr>;
using Scenario6 = Scenario<ip::Ip6Addr>;

// Knobs for the generator. Every `max_*` is an inclusive upper bound for a
// weighted draw; the defaults produce scenarios small enough that the full
// 24-config differential run of one scenario takes a few milliseconds.
struct GenOptions {
  std::size_t min_table = 48;
  std::size_t max_table = 400;
  std::size_t packets = 600;
  // Churn: number of mid-stream deltas and the per-delta burst size.
  std::size_t max_churn_steps = 6;
  std::size_t max_burst = 8;
  double neighbor_churn_fraction = 0.25;  // of churn steps, hit the sender
  // Fault injection: probability a packet carries any fault; the specific
  // fault is drawn from `fault_weights` (indexed by Fault, kNone excluded
  // from the draw — weight 0 entries are never drawn).
  double fault_fraction = 0.25;
  bool faults = true;
  bool churn = true;
};

namespace detail {

// Draws a consistent FibDelta by mutating `cur` (the generator's mirror):
// withdraws, re-announces from the withdrawn stack, reroutes — never the
// same prefix twice in one delta.
template <typename A>
rib::FibDelta<A> drawDelta(Rng& rng, rib::Fib<A>& cur,
                           std::vector<trie::Match<A>>& withdrawn,
                           std::size_t burst) {
  using EntryT = trie::Match<A>;
  rib::FibDelta<A> d;
  std::unordered_set<ip::Prefix<A>> touched;
  const std::size_t withdraws = 1 + rng.index(burst);
  for (std::size_t k = 0; k < withdraws && cur.size() > 16; ++k) {
    const auto entries = cur.entries();
    const EntryT e = entries[rng.index(entries.size())];
    if (!touched.insert(e.prefix).second) continue;
    withdrawn.push_back(e);
    d.removed.push_back(e.prefix);
    cur.remove(e.prefix);
  }
  const std::size_t announces = rng.index(burst + 1);
  for (std::size_t k = 0; k < announces && !withdrawn.empty(); ++k) {
    const EntryT e = withdrawn.back();
    withdrawn.pop_back();
    if (!touched.insert(e.prefix).second) continue;
    if (cur.contains(e.prefix)) continue;
    d.added.push_back(e);
    cur.add(e.prefix, e.next_hop);
  }
  const std::size_t reroutes = rng.index(3);
  for (std::size_t k = 0; k < reroutes && !cur.empty(); ++k) {
    const auto entries = cur.entries();
    EntryT e = entries[rng.index(entries.size())];
    if (!touched.insert(e.prefix).second) continue;
    e.next_hop = static_cast<NextHop>(rng.uniform(0, 30));
    d.rerouted.push_back(e);
    cur.add(e.prefix, e.next_hop);
  }
  // Canonical order, like rib::diff: a scenario must be a pure function of
  // its seed, and serialization round-trips must be byte-stable.
  const auto entry_less = [](const EntryT& x, const EntryT& y) {
    return rib::detail::prefixLess<A>(x.prefix, y.prefix);
  };
  std::sort(d.added.begin(), d.added.end(), entry_less);
  std::sort(d.rerouted.begin(), d.rerouted.end(), entry_less);
  std::sort(d.removed.begin(), d.removed.end(), rib::detail::prefixLess<A>);
  return d;
}

template <typename A>
A drawAddress(Rng& rng);

template <>
inline ip::Ip4Addr drawAddress<ip::Ip4Addr>(Rng& rng) {
  return ip::Ip4Addr(rng.u32());
}
template <>
inline ip::Ip6Addr drawAddress<ip::Ip6Addr>(Rng& rng) {
  return ip::Ip6Addr(rng.u64(), rng.u64());
}

template <typename A>
rib::LengthHistogram<A::kBits> defaultHistogram();

template <>
inline rib::LengthHistogram<32> defaultHistogram<ip::Ip4Addr>() {
  return rib::internetLengths1999();
}
template <>
inline rib::LengthHistogram<128> defaultHistogram<ip::Ip6Addr>() {
  return rib::internetLengths6();
}

// An address biased toward the table (uniform addresses mostly miss small
// tables): with probability 0.8 extend a random table prefix with random
// bits, else draw uniformly.
template <typename A>
A coveredAddress(const std::vector<trie::Match<A>>& entries, Rng& rng) {
  if (entries.empty() || rng.chance(0.2)) return drawAddress<A>(rng);
  const auto& p = entries[rng.index(entries.size())].prefix;
  A a = p.addr();
  for (int b = p.length(); b < A::kBits; ++b) {
    a = a.withBit(b, static_cast<unsigned>(rng.u32() & 1));
  }
  return a;
}

}  // namespace detail

// Generates the scenario for `seed`. Deterministic: same seed + options →
// identical scenario (tables, deltas, packets, faults, aux values).
template <typename A>
Scenario<A> generateScenario(std::uint64_t seed, const GenOptions& opt = {}) {
  Scenario<A> s;
  s.seed = seed;
  Rng rng(Rng::splitMix64(seed) ^ 0x5ce7a9105eedULL);

  // Table shapes: receiver size biased small (min of two uniform draws keeps
  // the sweep fast while still visiting large tables); the sender is derived
  // as a neighbor with drawn similarity — the similarity knobs are exactly
  // what controls how many problematic clues exist (§6 Table 2).
  const std::size_t span = opt.max_table - opt.min_table;
  const std::size_t receiver_size =
      opt.min_table + std::min(rng.index(span + 1), rng.index(span + 1));
  rib::GenOptions<A> gen;
  gen.size = receiver_size;
  gen.histogram = detail::defaultHistogram<A>();
  gen.subprefix_fraction = 0.2 + rng.real() * 0.3;
  const auto receiver_fib = rib::TableGen<A>::generate(rng, gen);
  s.receiver = {receiver_fib.entries().begin(), receiver_fib.entries().end()};

  rib::NeighborOptions<A> nopt;
  nopt.shared = static_cast<std::size_t>(
      static_cast<double>(s.receiver.size()) * (0.6 + rng.real() * 0.35));
  nopt.fresh = 1 + rng.index(std::max<std::size_t>(1, s.receiver.size() / 4));
  nopt.fresh_extension_fraction = 0.3 + rng.real() * 0.5;
  const auto sender_fib =
      rib::TableGen<A>::deriveNeighbor(receiver_fib, rng, nopt);
  s.sender = {sender_fib.entries().begin(), sender_fib.entries().end()};

  // Churn schedule: deltas drawn against mirrored tables so each is
  // consistent with the state it will apply to, positioned at increasing
  // stream offsets.
  if (opt.churn && opt.max_churn_steps > 0) {
    rib::Fib<A> cur_recv{std::vector<trie::Match<A>>(s.receiver)};
    rib::Fib<A> cur_send{std::vector<trie::Match<A>>(s.sender)};
    std::vector<trie::Match<A>> withdrawn_recv, withdrawn_send;
    const std::size_t steps = rng.index(opt.max_churn_steps + 1);
    // Positions and targets first, THEN the deltas in publish order: each
    // delta is drawn against the mirror state every earlier step left
    // behind, so it stays consistent with the table it will apply to.
    std::vector<std::pair<std::size_t, bool>> schedule;
    schedule.reserve(steps);
    for (std::size_t k = 0; k < steps; ++k) {
      schedule.emplace_back(
          opt.packets == 0 ? 0 : rng.index(opt.packets + 1),
          rng.chance(opt.neighbor_churn_fraction));
    }
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const auto& x, const auto& y) {
                       return x.first < y.first;
                     });
    for (const auto& [after, neighbor] : schedule) {
      ChurnStep<A> step;
      step.neighbor = neighbor;
      step.after_packet = after;
      step.delta = neighbor ? detail::drawDelta(rng, cur_send, withdrawn_send,
                                                opt.max_burst)
                            : detail::drawDelta(rng, cur_recv, withdrawn_recv,
                                                opt.max_burst);
      if (!step.delta.empty()) s.churn.push_back(std::move(step));
    }
  }

  // Packet stream: destinations biased toward the sender's coverage (so
  // clues are usually present), faults drawn per packet.
  s.packets.reserve(opt.packets);
  for (std::size_t i = 0; i < opt.packets; ++i) {
    SimPacket<A> p;
    p.dest = detail::coveredAddress(rng.chance(0.5) ? s.sender : s.receiver,
                                    rng);
    if (opt.faults && rng.chance(opt.fault_fraction)) {
      static constexpr Fault kInjectable[] = {Fault::kNoClue, Fault::kTruncated,
                                              Fault::kJunk, Fault::kStale,
                                              Fault::kWrongIndex};
      p.fault = kInjectable[rng.index(std::size(kInjectable))];
    }
    p.aux = rng.u32();
    s.packets.push_back(p);
  }
  return s;
}

}  // namespace cluert::sim
