#include "sim/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace cluert::sim {

std::optional<Fault> faultFromName(std::string_view name) {
  for (std::size_t i = 0; i < kFaultCount; ++i) {
    const Fault f = static_cast<Fault>(i);
    if (faultName(f) == name) return f;
  }
  return std::nullopt;
}

std::string_view scenarioFamily(std::string_view text) {
  detail::LineReader in(text);
  const auto header = in.next();
  if (!header) return {};
  const auto f = detail::fields(*header);
  if (f.size() != 3 || f[1] != "v1") return {};
  // Topology scenarios (topo/scenario.h) share the corpus directory and
  // replay machinery; the header word routes them to the topo parser.
  if (f[0] == "cluert-topo") return f[2] == "ipv4" ? "topo4" : std::string_view{};
  if (f[0] != "cluert-scenario") return {};
  if (f[2] == "ipv4" || f[2] == "ipv6") return f[2] == "ipv4" ? "ipv4" : "ipv6";
  return {};
}

std::vector<std::string> listCorpusFiles(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".scn") continue;
    out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool writeFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

namespace detail {

std::vector<std::string_view> fields(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    std::size_t sp = line.find(' ', pos);
    if (sp == std::string_view::npos) sp = line.size();
    if (sp > pos) out.push_back(line.substr(pos, sp - pos));
    pos = sp + 1;
  }
  return out;
}

std::optional<std::uint64_t> parseU64(std::string_view s) {
  if (s.empty() || s.size() > 20) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (~std::uint64_t{0} - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  return v;
}

}  // namespace detail

}  // namespace cluert::sim
