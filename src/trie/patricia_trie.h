// Patricia (path-compressed) trie — the production LPM structure of 1999
// routers ([22, 23] in the paper) and the structure the paper recommends for
// continuing a clue-restricted search (§4 "Adapting Patricia").
//
// Every node stores the full prefix string it represents, so verifying the
// bits skipped along a compressed edge is part of visiting the node (one
// memory access — the node *is* one record).
//
// Invariant: every node is marked, or is the root, or has two children
// (unmarked unary vertices are contracted away).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/types.h"
#include "ip/prefix.h"
#include "mem/access_counter.h"
#include "trie/binary_trie.h"
#include "common/check.h"

namespace cluert::trie {

template <typename A>
class PatriciaTrie {
 public:
  using PrefixT = ip::Prefix<A>;
  using MatchT = Match<A>;

  struct Node {
    PrefixT prefix;
    Node* parent = nullptr;
    std::unique_ptr<Node> child[2];  // keyed by bit at prefix.length()
    bool marked = false;
    NextHop next_hop = kNoNextHop;
    // Per-neighbor Claim-1 "a longer candidate may still exist below"
    // booleans (§4). Maintained by annotateContinueBits.
    std::uint64_t continue_bits = 0;

    bool isLeaf() const { return !child[0] && !child[1]; }
  };

  PatriciaTrie() : root_(std::make_unique<Node>()) {}

  PatriciaTrie(const PatriciaTrie&) = delete;
  PatriciaTrie& operator=(const PatriciaTrie&) = delete;
  PatriciaTrie(PatriciaTrie&&) = default;
  PatriciaTrie& operator=(PatriciaTrie&&) = default;

  // Builds a Patricia trie holding the same prefix set as `source`.
  static PatriciaTrie fromBinaryTrie(const BinaryTrie<A>& source) {
    PatriciaTrie t;
    source.forEachPrefix(
        [&](const PrefixT& p, NextHop nh) { t.insert(p, nh); });
    return t;
  }

  // -- construction ---------------------------------------------------------

  // Inserts (or overwrites) a prefix. Standard compressed-trie insertion:
  // descend while the new prefix extends the current node, then either land
  // exactly, split a compressed edge, or attach a new leaf.
  void insert(const PrefixT& prefix, NextHop next_hop) {
    Node* node = root_.get();
    while (true) {
      // Invariant: node->prefix is a (non-strict) prefix of `prefix`.
      if (node->prefix.length() == prefix.length()) {
        if (!node->marked) ++prefix_count_;
        node->marked = true;
        node->next_hop = next_hop;
        return;
      }
      const unsigned b = prefix.bit(node->prefix.length());
      Node* next = node->child[b].get();
      if (next == nullptr) {
        attachLeaf(node, b, prefix, next_hop);
        return;
      }
      if (prefix.isPrefixOf(next->prefix)) {
        if (prefix.length() == next->prefix.length()) {
          if (!next->marked) ++prefix_count_;
          next->marked = true;
          next->next_hop = next_hop;
          return;
        }
        // New prefix sits on the edge node -> next: split the edge.
        Node* mid = splitEdge(node, b, prefix.length(),
                              /*branch_prefix=*/next->prefix);
        if (!mid->marked) ++prefix_count_;
        mid->marked = true;
        mid->next_hop = next_hop;
        return;
      }
      if (next->prefix.isStrictPrefixOf(prefix)) {
        node = next;  // keep descending
        continue;
      }
      // Divergence in the middle of the edge: split at the fork point and
      // hang the new prefix as a sibling leaf.
      const int fork = forkLength(prefix, next->prefix);
      Node* mid = splitEdge(node, b, fork, /*branch_prefix=*/next->prefix);
      attachLeaf(mid, prefix.bit(fork), prefix, next_hop);
      return;
    }
  }

  // Removes a prefix if present, restoring the compression invariant
  // (detached leaves may leave an unmarked unary parent, which is spliced
  // out). Returns true iff the prefix was present.
  bool erase(const PrefixT& prefix) {
    Node* node = mutableExactNode(prefix);
    if (node == nullptr || !node->marked) return false;
    node->marked = false;
    node->next_hop = kNoNextHop;
    --prefix_count_;
    restoreInvariant(node);
    return true;
  }

  // -- queries --------------------------------------------------------------

  const Node* root() const { return root_.get(); }

  // Longest-prefix match; the classic Patricia walk. One access per node.
  std::optional<MatchT> lookup(const A& address,
                               mem::AccessCounter& acc) const {
    const Node* node = root_.get();
    const Node* best = nullptr;
    while (node != nullptr) {
      acc.add(mem::Region::kTrieNode);
      if (!node->prefix.matches(address)) break;  // skipped bits disagree
      if (node->marked) best = node;
      if (node->prefix.length() == A::kBits) break;
      node = node->child[address.bit(node->prefix.length())].get();
    }
    if (best == nullptr) return std::nullopt;
    return MatchT{best->prefix, best->next_hop};
  }

  // The unique shallowest node whose prefix extends-or-equals `clue`
  // (nullptr if no table prefix extends the clue). Because of path
  // compression the clue string itself may live in the middle of an edge;
  // this node is then the lower endpoint of that edge. This is what a clue
  // entry's Ptr points at (§3.1.1).
  const Node* descendAnchor(const PrefixT& clue) const {
    const Node* node = root_.get();
    while (true) {
      if (clue.isPrefixOf(node->prefix)) return node;
      if (!node->prefix.isStrictPrefixOf(clue)) return nullptr;
      const Node* next = node->child[clue.bit(node->prefix.length())].get();
      if (next == nullptr) return nullptr;
      node = next;
    }
  }

  // Continues a search below the clue: finds the longest marked prefix of
  // `address` that strictly extends `clue`, starting at `anchor`
  // (= descendAnchor(clue), already fetched as part of the clue entry's Ptr
  // dereference — its visit is charged here). Returns nullopt if there is no
  // such match; the caller falls back to the clue entry's FD.
  //
  // When `neighbor` is set, the walk additionally stops at nodes whose
  // Claim-1 boolean for that neighbor is false (Advance method, §4).
  std::optional<MatchT> lookupBelow(const Node* anchor, const PrefixT& clue,
                                    const A& address,
                                    std::optional<NeighborIndex> neighbor,
                                    mem::AccessCounter& acc) const {
    CLUERT_DCHECK(anchor != nullptr) << "lookupBelow from a null anchor";
    const Node* node = anchor;
    const Node* best = nullptr;
    while (true) {
      acc.add(mem::Region::kTrieNode);
      if (!node->prefix.matches(address)) break;
      if (node->marked && node->prefix.length() > clue.length()) best = node;
      if (neighbor && !continueBit(node, *neighbor)) break;
      if (node->prefix.length() == A::kBits) break;
      const Node* next =
          node->child[address.bit(node->prefix.length())].get();
      if (next == nullptr) break;
      node = next;
    }
    if (best == nullptr) return std::nullopt;
    return MatchT{best->prefix, best->next_hop};
  }

  bool contains(const PrefixT& prefix) const {
    const Node* node = exactNode(prefix);
    return node != nullptr && node->marked;
  }

  std::size_t prefixCount() const { return prefix_count_; }

  std::size_t nodeCount() const {
    std::size_t n = 0;
    visit(root_.get(), [&](const Node&) { ++n; });
    return n;
  }

  void forEachNode(const std::function<void(const Node&)>& fn) const {
    visit(root_.get(), fn);
  }

  // -- Claim-1 continue bits (§4 "Adapting Patricia") -----------------------

  // `judge(node_prefix)` must return true iff a C1 candidate w.r.t. the
  // neighbor may exist strictly below `node_prefix` — typically forwarded to
  // BinaryTrie::continueBit on the router's control-plane binary trie, which
  // is edge-aware (a neighbor prefix sitting in the middle of a compressed
  // Patricia edge still blocks the branch).
  void annotateContinueBits(
      NeighborIndex neighbor,
      const std::function<bool(const PrefixT&)>& judge) {
    CLUERT_CHECK(neighbor < kMaxAnnotatedNeighbors)
        << "neighbor index " << neighbor << " exceeds the continue-bit mask";
    const std::uint64_t bit = std::uint64_t{1} << neighbor;
    visitMutable(root_.get(), [&](Node& n) {
      if (judge(n.prefix)) {
        n.continue_bits |= bit;
      } else {
        n.continue_bits &= ~bit;
      }
    });
  }

  static bool continueBit(const Node* node, NeighborIndex neighbor) {
    return (node->continue_bits >> neighbor) & 1u;
  }

 private:
  static int forkLength(const PrefixT& x, const PrefixT& y) {
    const int common = x.addr().commonPrefixLen(y.addr());
    return std::min({common, x.length(), y.length()});
  }

  void attachLeaf(Node* parent, unsigned b, const PrefixT& prefix,
                  NextHop next_hop) {
    auto leaf = std::make_unique<Node>();
    leaf->prefix = prefix;
    leaf->parent = parent;
    leaf->marked = true;
    leaf->next_hop = next_hop;
    parent->child[b] = std::move(leaf);
    ++prefix_count_;
  }

  // Replaces the edge parent --b--> old_child with parent -> mid -> old_child
  // where mid represents branch_prefix truncated to `mid_len`.
  Node* splitEdge(Node* parent, unsigned b, int mid_len,
                  const PrefixT& branch_prefix) {
    std::unique_ptr<Node> old_child = std::move(parent->child[b]);
    auto mid = std::make_unique<Node>();
    mid->prefix = branch_prefix.truncated(mid_len);
    mid->parent = parent;
    old_child->parent = mid.get();
    const unsigned down = branch_prefix.bit(mid_len);
    mid->child[down] = std::move(old_child);
    Node* raw = mid.get();
    parent->child[b] = std::move(mid);
    return raw;
  }

  // Re-establishes "every node is marked, or the root, or has two children"
  // upward from a just-unmarked node.
  void restoreInvariant(Node* node) {
    while (node != nullptr && node != root_.get() && !node->marked) {
      Node* parent = node->parent;
      const unsigned slot = node->prefix.bit(parent->prefix.length());
      const int kids = (node->child[0] ? 1 : 0) + (node->child[1] ? 1 : 0);
      if (kids == 0) {
        parent->child[slot].reset();
        node = parent;  // the parent may have become unary
      } else if (kids == 1) {
        // Splice: the parent adopts the single grandchild directly.
        const unsigned b = node->child[0] ? 0 : 1;
        std::unique_ptr<Node> grandchild = std::move(node->child[b]);
        grandchild->parent = parent;
        parent->child[slot] = std::move(grandchild);
        return;
      } else {
        return;  // two children: a legitimate fork
      }
    }
  }

  Node* mutableExactNode(const PrefixT& prefix) {
    return const_cast<Node*>(exactNode(prefix));
  }

  const Node* exactNode(const PrefixT& prefix) const {
    const Node* node = root_.get();
    while (node != nullptr) {
      if (node->prefix.length() == prefix.length()) {
        return node->prefix == prefix ? node : nullptr;
      }
      if (node->prefix.length() > prefix.length() ||
          !node->prefix.isPrefixOf(prefix)) {
        return nullptr;
      }
      node = node->child[prefix.bit(node->prefix.length())].get();
    }
    return nullptr;
  }

  template <typename Fn>
  static void visit(const Node* node, const Fn& fn) {
    if (node == nullptr) return;
    fn(*node);
    visit(node->child[0].get(), fn);
    visit(node->child[1].get(), fn);
  }

  template <typename Fn>
  static void visitMutable(Node* node, const Fn& fn) {
    if (node == nullptr) return;
    fn(*node);
    visitMutable(node->child[0].get(), fn);
    visitMutable(node->child[1].get(), fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t prefix_count_ = 0;
};

using PatriciaTrie4 = PatriciaTrie<ip::Ip4Addr>;
using PatriciaTrie6 = PatriciaTrie<ip::Ip6Addr>;

}  // namespace cluert::trie
