// Binary (1-bit-per-level) trie over prefixes — the reference longest-prefix
// match structure of §3.1.
//
// Vertices correspond to binary strings; a vertex is *marked* iff the string
// is a prefix in the forwarding table. As in the paper, the trie is kept
// pruned: every vertex either is marked or has a marked descendant, so all
// leaves are marked. This pruning is what gives the clue table its "vertex
// does not exist => no longer match possible" semantics (case 1 of §3.1.2).
//
// Besides lookups, the trie supports the per-vertex, per-neighbor Claim-1
// "continue" booleans of §4 (see ContinueBits below) that let an Advance
// search stop as early as possible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"
#include "ip/prefix.h"
#include "mem/access_counter.h"
#include "common/check.h"

namespace cluert::trie {

// A successful longest-prefix match.
template <typename A>
struct Match {
  ip::Prefix<A> prefix;
  NextHop next_hop = kNoNextHop;

  friend bool operator==(const Match&, const Match&) = default;
};

template <typename A>
class BinaryTrie {
 public:
  using PrefixT = ip::Prefix<A>;
  using MatchT = Match<A>;

  struct Node {
    PrefixT prefix;                   // the string this vertex represents
    Node* parent = nullptr;
    std::unique_ptr<Node> child[2];   // child[b] extends prefix with bit b
    bool marked = false;              // is `prefix` in the forwarding table?
    NextHop next_hop = kNoNextHop;    // valid iff marked
    // Per-neighbor "search may find a longer match below here" booleans
    // (Claim 1 applied to this vertex; §4 "Adapting Patricia"). Bit j set
    // means: continuing below this vertex can still discover a C1 candidate
    // with respect to neighbor j.
    std::uint64_t continue_bits = 0;

    bool isLeaf() const { return !child[0] && !child[1]; }
  };

  BinaryTrie() : root_(std::make_unique<Node>()) {}

  BinaryTrie(const BinaryTrie&) = delete;
  BinaryTrie& operator=(const BinaryTrie&) = delete;
  BinaryTrie(BinaryTrie&&) = default;
  BinaryTrie& operator=(BinaryTrie&&) = default;

  // -- construction ---------------------------------------------------------

  // Inserts (or overwrites) a prefix with its next hop.
  void insert(const PrefixT& prefix, NextHop next_hop) {
    Node* node = root_.get();
    for (int d = 0; d < prefix.length(); ++d) {
      const unsigned b = prefix.bit(d);
      if (!node->child[b]) {
        auto fresh = std::make_unique<Node>();
        fresh->prefix = prefix.truncated(d + 1);
        fresh->parent = node;
        node->child[b] = std::move(fresh);
        ++node_count_;
      }
      node = node->child[b].get();
    }
    if (!node->marked) ++prefix_count_;
    node->marked = true;
    node->next_hop = next_hop;
  }

  // Removes a prefix if present; prunes now-useless unmarked vertices so the
  // "pruned trie" invariant holds. Returns true iff the prefix was present.
  bool erase(const PrefixT& prefix) {
    Node* node = findNode(prefix);
    if (node == nullptr || !node->marked) return false;
    node->marked = false;
    node->next_hop = kNoNextHop;
    --prefix_count_;
    prune(node);
    return true;
  }

  // -- queries --------------------------------------------------------------

  // The vertex for `prefix`, or nullptr if it does not exist in the (pruned)
  // trie. A missing vertex certifies that no table prefix extends `prefix`.
  const Node* findVertex(const PrefixT& prefix) const {
    return findNode(prefix);
  }

  const Node* root() const { return root_.get(); }

  // Longest-prefix match by the classic bit-by-bit walk ("Regular" in §6).
  // Charges one trie-node access per vertex visited.
  std::optional<MatchT> lookup(const A& address,
                               mem::AccessCounter& acc) const {
    const Node* node = root_.get();
    const Node* best = nullptr;
    int depth = 0;
    while (node != nullptr) {
      acc.add(mem::Region::kTrieNode);
      if (node->marked) best = node;
      if (depth == A::kBits) break;
      node = node->child[address.bit(depth)].get();
      ++depth;
    }
    if (best == nullptr) return std::nullopt;
    return MatchT{best->prefix, best->next_hop};
  }

  // Continues a bit-by-bit walk *below* `start` (exclusive), following
  // `address` (which must match start->prefix). Returns the longest marked
  // match strictly below `start`, or nullopt if none — the caller then falls
  // back to the clue entry's FD. When `neighbor` is set, the walk stops as
  // soon as the vertex's Claim-1 boolean says no candidate can lie below
  // (Advance method, §4 "Adapting Patricia" applied to the plain trie).
  std::optional<MatchT> lookupBelow(const Node* start, const A& address,
                                    std::optional<NeighborIndex> neighbor,
                                    mem::AccessCounter& acc) const {
    CLUERT_DCHECK(start != nullptr) << "lookupBelow from a null vertex";
    const Node* best = nullptr;
    const Node* node = start;
    int depth = start->prefix.length();
    while (true) {
      if (neighbor && !continueBit(node, *neighbor)) break;
      if (depth == A::kBits) break;
      const Node* next = node->child[address.bit(depth)].get();
      if (next == nullptr) break;
      node = next;
      ++depth;
      acc.add(mem::Region::kTrieNode);
      if (node->marked) best = node;
    }
    if (best == nullptr) return std::nullopt;
    return MatchT{best->prefix, best->next_hop};
  }

  // Longest marked ancestor-or-self of `prefix` — the "least ancestor of s
  // in the trie which is also a prefix" used for the FD fields (§3.1.1).
  // Pure control-plane query; charges no accesses.
  std::optional<MatchT> longestMarkedAtOrAbove(const PrefixT& prefix) const {
    const Node* node = root_.get();
    const Node* best = node->marked ? node : nullptr;
    for (int d = 0; d < prefix.length() && node != nullptr; ++d) {
      node = node->child[prefix.bit(d)].get();
      if (node != nullptr && node->marked) best = node;
    }
    return best ? std::optional<MatchT>(MatchT{best->prefix, best->next_hop})
                : std::nullopt;
  }

  // True iff `prefix` itself is marked.
  bool contains(const PrefixT& prefix) const {
    const Node* node = findNode(prefix);
    return node != nullptr && node->marked;
  }

  NextHop nextHopOf(const PrefixT& prefix) const {
    const Node* node = findNode(prefix);
    return node != nullptr && node->marked ? node->next_hop : kNoNextHop;
  }

  std::size_t prefixCount() const { return prefix_count_; }
  std::size_t nodeCount() const { return node_count_ + 1; }  // + root
  bool empty() const { return prefix_count_ == 0; }

  // Calls fn(prefix, next_hop) for every marked vertex, in preorder.
  void forEachPrefix(
      const std::function<void(const PrefixT&, NextHop)>& fn) const {
    forEachPrefixImpl(root_.get(), fn);
  }

  // Calls fn(node) for every vertex in the subtree of `start` (inclusive),
  // preorder. fn returns false to prune the branch below the node.
  void visitSubtree(const Node* start,
                    const std::function<bool(const Node&)>& fn) const {
    if (start == nullptr) return;
    if (!fn(*start)) return;
    for (unsigned b = 0; b < 2; ++b) {
      visitSubtree(start->child[b].get(), fn);
    }
  }

  // -- Claim-1 continue bits (§4) ------------------------------------------

  // Computes, for every vertex v of this trie, whether a search entered at v
  // with respect to neighbor trie t1 may still find a condition-C1 candidate
  // strictly below v: exists a marked descendant p of v such that no vertex q
  // with v < q <= p is marked in t1. Claim 1 for a clue s is exactly
  // "!continueBit(vertex(s))".
  template <typename Neighbor>
  void computeContinueBits(NeighborIndex neighbor, const Neighbor& t1) {
    CLUERT_CHECK(neighbor < kMaxAnnotatedNeighbors)
        << "neighbor index " << neighbor << " exceeds the continue-bit mask";
    computeContinueBitsImpl(root_.get(), neighbor, t1);
  }

  static bool continueBit(const Node* node, NeighborIndex neighbor) {
    return (node->continue_bits >> neighbor) & 1u;
  }

  // The Claim-1 condition for a clue vertex (paper Claim 1): true iff no
  // prefix of this trie longer than `node`'s string can ever be the BMP,
  // given that the clue came from `neighbor`.
  static bool claim1Holds(const Node* node, NeighborIndex neighbor) {
    return !continueBit(node, neighbor);
  }

 private:
  Node* findNode(const PrefixT& prefix) const {
    Node* node = root_.get();
    for (int d = 0; d < prefix.length(); ++d) {
      node = node->child[prefix.bit(d)].get();
      if (node == nullptr) return nullptr;
    }
    return node;
  }

  void prune(Node* node) {
    while (node != nullptr && node != root_.get() && !node->marked &&
           node->isLeaf()) {
      Node* parent = node->parent;
      const unsigned b = node->prefix.bit(node->prefix.length() - 1);
      parent->child[b].reset();
      --node_count_;
      node = parent;
    }
  }

  void forEachPrefixImpl(
      const Node* node,
      const std::function<void(const PrefixT&, NextHop)>& fn) const {
    if (node == nullptr) return;
    if (node->marked) fn(node->prefix, node->next_hop);
    forEachPrefixImpl(node->child[0].get(), fn);
    forEachPrefixImpl(node->child[1].get(), fn);
  }

  // Bottom-up: continue(v) = OR over children c of
  //   !t1.contains(c.prefix) && (c.marked || continue(c)).
  // A child whose string is marked in t1 blocks its whole branch (any p
  // below it has q = that child), which is precisely Claim 1.
  template <typename Neighbor>
  bool computeContinueBitsImpl(Node* node, NeighborIndex neighbor,
                               const Neighbor& t1) {
    bool cont = false;
    for (unsigned b = 0; b < 2; ++b) {
      Node* c = node->child[b].get();
      if (c == nullptr) continue;
      const bool below = computeContinueBitsImpl(c, neighbor, t1);
      if (!t1.contains(c->prefix) && (c->marked || below)) cont = true;
    }
    const std::uint64_t bit = std::uint64_t{1} << neighbor;
    if (cont) {
      node->continue_bits |= bit;
    } else {
      node->continue_bits &= ~bit;
    }
    return cont;
  }

  std::unique_ptr<Node> root_;
  std::size_t prefix_count_ = 0;
  std::size_t node_count_ = 0;  // excluding root
};

using BinaryTrie4 = BinaryTrie<ip::Ip4Addr>;
using BinaryTrie6 = BinaryTrie<ip::Ip6Addr>;

}  // namespace cluert::trie
