#include "trie/binary_trie.h"

namespace cluert::trie {

// Header-only template; these instantiations force a full type-check of both
// address widths when the library is built.
template class BinaryTrie<ip::Ip4Addr>;
template class BinaryTrie<ip::Ip6Addr>;

}  // namespace cluert::trie
