#include "trie/patricia_trie.h"

namespace cluert::trie {

template class PatriciaTrie<ip::Ip4Addr>;
template class PatriciaTrie<ip::Ip6Addr>;

}  // namespace cluert::trie
