// The simulated network: routers, links and end-to-end packet delivery with
// per-hop accounting. Builders wire a SyntheticInternet topology into
// routers with per-tier configurations (clue-enabled backbone, legacy edge,
// etc. — §5.3).
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/router.h"
#include "rib/internet_gen.h"

namespace cluert::net {

template <typename A>
class Network {
 public:
  using RouterT = Router<A>;
  using ConfigFn =
      std::function<typename RouterT::Config(RouterId)>;

  // Adds a router; ids must be added densely starting from 0.
  RouterT& addRouter(RouterId id, rib::Fib<A> fib,
                     const typename RouterT::Config& config) {
    assert(id == routers_.size());
    routers_.push_back(
        std::make_unique<RouterT>(id, std::move(fib), config));
    tries_.push_back(routers_.back()->fib().buildTrie());
    return *routers_.back();
  }

  // Declares a bidirectional link; creates the clue ports on both ends
  // (each receiver gets the sender's prefix view, as the routing protocol
  // exchange would provide — §5.3). A neighbor that relays, truncates or
  // strips clues cannot certify them as its own BMP, so the receiving port
  // drops to Simple semantics (see Router::connectFrom).
  void link(RouterId a, RouterId b) {
    routers_[a]->connectFrom(b, &tries_[b], sendsGenuineClues(*routers_[b]));
    routers_[b]->connectFrom(a, &tries_[a], sendsGenuineClues(*routers_[a]));
  }

  static bool sendsGenuineClues(const RouterT& r) {
    const auto& c = r.config();
    return c.clue_enabled && c.attach_clue && c.truncate_to == 0;
  }

  RouterT& router(RouterId id) { return *routers_[id]; }
  const RouterT& router(RouterId id) const { return *routers_[id]; }
  std::size_t size() const { return routers_.size(); }

  struct SendResult {
    bool delivered = false;
    std::uint64_t total_accesses = 0;
    std::vector<HopRecord> trace;
  };

  // Injects a packet for `dest` at router `ingress` and forwards it hop by
  // hop until delivery, a routing failure, or TTL expiry. Each hop's memory
  // accesses are recorded in the trace.
  SendResult send(const A& dest, RouterId ingress, int ttl = 64) {
    Packet<A> packet;
    packet.dest = dest;
    packet.ttl = ttl;
    SendResult result;
    RouterId at = ingress;
    RouterId from = kNoRouter;
    while (packet.ttl-- > 0) {
      RouterT& r = *routers_[at];
      mem::AccessCounter acc;
      const auto d = r.forward(packet, from, acc);
      HopRecord hop;
      hop.router = at;
      hop.accesses = acc.total();
      hop.bmp_length = d.match ? d.match->prefix.length() : -1;
      hop.clue_used = d.clue_used;
      hop.delivered = d.delivered;
      result.trace.push_back(hop);
      result.total_accesses += hop.accesses;
      if (!d.match) break;  // no route
      if (d.delivered) {
        result.delivered = true;
        break;
      }
      from = at;
      at = static_cast<RouterId>(d.match->next_hop);
      if (at >= routers_.size()) break;  // next hop is not a router we model
    }
    packet.trace = result.trace;
    return result;
  }

 private:
  std::vector<std::unique_ptr<RouterT>> routers_;
  // Prefix views handed to neighbors. A deque keeps element addresses stable
  // across addRouter calls, so link() may be interleaved with addRouter.
  std::deque<trie::BinaryTrie<A>> tries_;
};

using Network4 = Network<ip::Ip4Addr>;

// Builds a Network over a SyntheticInternet topology. `config_of` decides
// each router's behaviour (clue participation, method, mode, truncation).
Network4 buildNetwork(const rib::SyntheticInternet& internet,
                      const Network4::ConfigFn& config_of);

}  // namespace cluert::net
