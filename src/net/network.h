// The simulated network: routers, links and end-to-end packet delivery with
// per-hop accounting. Builders wire a SyntheticInternet topology into
// routers with per-tier configurations (clue-enabled backbone, legacy edge,
// etc. — §5.3).
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/router.h"
#include "pipeline/pipeline.h"
#include "rib/internet_gen.h"
#include "common/check.h"

namespace cluert::net {

template <typename A>
class Network {
 public:
  using RouterT = Router<A>;
  using ConfigFn =
      std::function<typename RouterT::Config(RouterId)>;

  // Adds a router; ids must be added densely starting from 0.
  RouterT& addRouter(RouterId id, rib::Fib<A> fib,
                     const typename RouterT::Config& config) {
    CLUERT_CHECK(id == routers_.size())
        << "router ids must be assigned densely in order; got " << id;
    routers_.push_back(
        std::make_unique<RouterT>(id, std::move(fib), config));
    tries_.push_back(routers_.back()->fib().buildTrie());
    return *routers_.back();
  }

  // Declares a bidirectional link; creates the clue ports on both ends
  // (each receiver gets the sender's prefix view, as the routing protocol
  // exchange would provide — §5.3). A neighbor that relays, truncates or
  // strips clues cannot certify them as its own BMP, so the receiving port
  // drops to Simple semantics (see Router::connectFrom).
  void link(RouterId a, RouterId b) {
    routers_[a]->connectFrom(b, &tries_[b], sendsGenuineClues(*routers_[b]));
    routers_[b]->connectFrom(a, &tries_[a], sendsGenuineClues(*routers_[a]));
  }

  static bool sendsGenuineClues(const RouterT& r) {
    const auto& c = r.config();
    return c.clue_enabled && c.attach_clue && c.truncate_to == 0;
  }

  RouterT& router(RouterId id) { return *routers_[id]; }
  const RouterT& router(RouterId id) const { return *routers_[id]; }
  std::size_t size() const { return routers_.size(); }

  struct SendResult {
    bool delivered = false;
    std::uint64_t total_accesses = 0;
    std::vector<HopRecord> trace;
  };

  // Injects a packet for `dest` at router `ingress` and forwards it hop by
  // hop until delivery, a routing failure, or TTL expiry. Each hop's memory
  // accesses are recorded in the trace.
  SendResult send(const A& dest, RouterId ingress, int ttl = 64) {
    Packet<A> packet;
    packet.dest = dest;
    packet.ttl = ttl;
    SendResult result;
    RouterId at = ingress;
    RouterId from = kNoRouter;
    while (packet.ttl-- > 0) {
      RouterT& r = *routers_[at];
      mem::AccessCounter acc;
      const auto d = r.forward(packet, from, acc);
      HopRecord hop;
      hop.router = at;
      hop.accesses = acc.total();
      hop.bmp_length = d.match ? d.match->prefix.length() : -1;
      hop.clue_used = d.clue_used;
      hop.delivered = d.delivered;
      result.trace.push_back(hop);
      result.total_accesses += hop.accesses;
      if (!d.match) break;  // no route
      if (d.delivered) {
        result.delivered = true;
        break;
      }
      from = at;
      at = static_cast<RouterId>(d.match->next_hop);
      if (at >= routers_.size()) break;  // next hop is not a router we model
    }
    packet.trace = result.trace;
    return result;
  }

  // -- data-plane pipeline feeding ------------------------------------------
  //
  // send() forwards one packet at a time with a full per-hop trace — right
  // for the paper's path experiments, far too slow for throughput work. The
  // two methods below instead drive one *link* of the network (sender ->
  // receiver) through the batched multi-worker pipeline: clueStream()
  // produces exactly the (dest, clue) stream the sender would put on the
  // wire, and makePipeline() builds a pipeline whose shards forward with the
  // receiver's tables under the same semantics link() would give that port.

  using PipelineInput = typename pipeline::Pipeline<A>::Input;

  // The wire image of `dests` leaving `sender`: each destination paired with
  // the clue the sender's forwarding pass attaches, honouring the sender's
  // clue policy (participation, export filter, §5.3b truncation).
  std::vector<PipelineInput> clueStream(RouterId sender,
                                        std::span<const A> dests) const {
    const RouterT& r = *routers_[sender];
    const auto& cfg = r.config();
    std::vector<PipelineInput> out;
    out.reserve(dests.size());
    mem::AccessCounter scratch;
    for (const A& d : dests) {
      PipelineInput in;
      in.dest = d;
      if (cfg.clue_enabled && cfg.attach_clue) {
        if (const auto bmp = tries_[sender].lookup(d, scratch)) {
          if (!cfg.clue_export_filter || cfg.clue_export_filter(bmp->prefix)) {
            int len = bmp->prefix.length();
            if (cfg.truncate_to > 0) len = std::min(len, cfg.truncate_to);
            in.clue = core::ClueField::of(len);
          }
        }
      }
      out.push_back(in);
    }
    return out;
  }

  // Builds a pipeline forwarding at `receiver` for traffic arriving on the
  // link from `sender`. Method/mode/degradation-to-Simple follow the same
  // rules as link(); opt's worker/batch/ring knobs are honoured as given.
  // When `precompute` is set (the default), every shard's clue table is
  // preloaded with the sender's full clue universe (§3.3.2), the standard
  // setup for learn-off throughput runs.
  std::unique_ptr<pipeline::Pipeline<A>> makePipeline(
      RouterId receiver, RouterId sender, pipeline::PipelineOptions opt,
      bool precompute = true) {
    RouterT& r = *routers_[receiver];
    CLUERT_CHECK(r.config().clue_enabled)
        << "pipeline shards are CluePorts; a clue-less receiver has none";
    opt.method = r.config().method;
    opt.mode = sendsGenuineClues(*routers_[sender])
                   ? r.config().mode
                   : lookup::ClueMode::kSimple;
    opt.expected_clues = routers_[sender]->fib().size() + 16;
    // Claim-1 annotations for link()-created ports count up from 0 on each
    // receiver trie; pipeline ports count down from the top of the 64-bit
    // budget so the two never collide.
    CLUERT_CHECK(pipeline_neighbor_slots_.size() <= routers_.size())
        << "pipeline slot bookkeeping outgrew the router set";
    pipeline_neighbor_slots_.resize(routers_.size(), kMaxAnnotatedNeighbors);
    opt.neighbor_index = --pipeline_neighbor_slots_[receiver];
    auto p = std::make_unique<pipeline::Pipeline<A>>(r.suite(),
                                                     &tries_[sender], opt);
    if (precompute) {
      const auto clues = routers_[sender]->fib().prefixes();
      p->precompute(clues);
    }
    return p;
  }

 private:
  std::vector<std::unique_ptr<RouterT>> routers_;
  // Prefix views handed to neighbors. A deque keeps element addresses stable
  // across addRouter calls, so link() may be interleaved with addRouter.
  std::deque<trie::BinaryTrie<A>> tries_;
  // Next (descending) Claim-1 annotation slot per receiver; see makePipeline.
  std::vector<NeighborIndex> pipeline_neighbor_slots_;
};

using Network4 = Network<ip::Ip4Addr>;

// Builds a Network over a SyntheticInternet topology. `config_of` decides
// each router's behaviour (clue participation, method, mode, truncation).
Network4 buildNetwork(const rib::SyntheticInternet& internet,
                      const Network4::ConfigFn& config_of);

}  // namespace cluert::net
