#include "net/network.h"

namespace cluert::net {

template class Router<ip::Ip4Addr>;
template class Router<ip::Ip6Addr>;
template class Network<ip::Ip4Addr>;

Network4 buildNetwork(const rib::SyntheticInternet& internet,
                      const Network4::ConfigFn& config_of) {
  Network4 net;
  for (RouterId r = 0; r < internet.routerCount(); ++r) {
    net.addRouter(r, internet.fib(r), config_of(r));
  }
  for (RouterId r = 0; r < internet.routerCount(); ++r) {
    for (RouterId n : internet.neighbors(r)) {
      if (n > r) net.link(r, n);  // each undirected link once
    }
  }
  return net;
}

}  // namespace cluert::net
