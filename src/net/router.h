// A simulated router: a FIB, its lookup structures, and one clue port per
// incoming link. Routers can be configured clue-less (§5.3 heterogeneous
// networks): they then route by a plain lookup and either relay or strip the
// clue carried by the packet.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/distributed_lookup.h"
#include "net/packet.h"
#include "obs/hooks.h"
#include "rib/fib.h"
#include "rib/fib_diff.h"
#include "common/check.h"

namespace cluert::net {

template <typename A>
class Router {
 public:
  using MatchT = trie::Match<A>;
  using PrefixT = ip::Prefix<A>;

  struct Config {
    // Participates in distributed IP lookup (consults clue tables).
    bool clue_enabled = true;
    // Attaches/refreshes the clue on forwarded packets.
    bool attach_clue = true;
    // A non-participating router may still relay an incoming clue unchanged
    // ("assuming that intermediate routers relay the clue", §5.3) — or strip
    // it, modelling legacy equipment that clears unknown options.
    bool relay_clue = true;
    // >0: truncate outgoing clues to at most this many bits (§5.3b). A
    // truncated clue is not the sender's BMP, so receivers can only apply
    // Simple semantics to it; pair with mode = kSimple.
    int truncate_to = 0;
    // §5.3b "a router may refrain from sending some clues": prefixes for
    // which this returns false are not exported as clues (the packet goes
    // out clueless — never with a stale clue, so the exported ones remain
    // genuine and Advance receivers stay sound). Null exports everything.
    std::function<bool(const ip::Prefix<A>&)> clue_export_filter;
    lookup::Method method = lookup::Method::kPatricia;
    lookup::ClueMode mode = lookup::ClueMode::kAdvance;
    bool learn = true;
    // Non-null: this router feeds the shared registry — per-port lookup
    // metrics and the router_forward_total family, all labelled
    // {router="<id>"} so co-hosted routers stay distinguishable. The
    // registry must outlive the router.
    obs::MetricRegistry* registry = nullptr;
  };

  Router(RouterId id, rib::Fib<A> fib, const Config& config)
      : id_(id),
        config_(config),
        fib_(std::move(fib)),
        suite_(std::vector<MatchT>(fib_.entries().begin(),
                                   fib_.entries().end())) {
    if (config_.registry != nullptr) {
      const obs::Labels labels{{"router", std::to_string(id_)}};
      forwarded_ = &config_.registry
                        ->counter("router_forward_total",
                                  "Packets processed by Router::forward",
                                  labels)
                        .shard(0);
      delivered_ = &config_.registry
                        ->counter("router_delivered_total",
                                  "Packets that matched a locally originated "
                                  "route",
                                  labels)
                        .shard(0);
      config_.registry
          ->gauge("router_fib_entries", "Installed FIB entries", labels)
          .set(static_cast<double>(fib_.size()));
    }
  }

  RouterId id() const { return id_; }
  const rib::Fib<A>& fib() const { return fib_; }
  const Config& config() const { return config_; }
  lookup::LookupSuite<A>& suite() { return suite_; }
  const lookup::LookupSuite<A>& suite() const { return suite_; }

  // Registers an incoming link from `neighbor`, creating its clue port.
  // `neighbor_trie` is the sender's prefix view (required for Advance; may
  // be null for Simple). No-op for clue-less routers.
  //
  // `sender_clues_genuine` — whether every clue arriving on this link is the
  // *sender's own* BMP. False when the neighbor merely relays clues from
  // further upstream, truncates them (§5.3b) or doesn't attach any: such
  // clues are still prefixes of the destination, so Simple applies, but
  // Claim 1 (which reasons about the sender's table) does not — the port
  // falls back to Simple semantics, the conservative reading of §5.3.
  void connectFrom(RouterId neighbor, const trie::BinaryTrie<A>* neighbor_trie,
                   bool sender_clues_genuine = true) {
    if (!config_.clue_enabled) return;
    if (ports_.count(neighbor) != 0) return;
    typename core::CluePort<A>::Options opt;
    opt.method = config_.method;
    opt.mode = sender_clues_genuine ? config_.mode
                                    : lookup::ClueMode::kSimple;
    opt.learn = config_.learn;
    opt.neighbor_index = next_neighbor_index_++;
    CLUERT_CHECK(opt.neighbor_index < kMaxAnnotatedNeighbors)
        << "router has more clue neighbors than the continue-bit mask holds";
    opt.expected_clues = fib_.size() + 16;
    auto port =
        std::make_unique<core::CluePort<A>>(suite_, neighbor_trie, opt);
    if (config_.registry != nullptr) {
      // Routers run single-threaded in the simulator, so every port shares
      // shard 0; the {router=...} label keeps series distinct per router.
      port->attachObs(obs::LookupObs::bind(
          *config_.registry, 0, nullptr,
          {{"router", std::to_string(id_)}}));
    }
    ports_.emplace(neighbor, std::move(port));
  }

  struct Decision {
    std::optional<MatchT> match;
    bool delivered = false;  // matched a locally originated route
    bool clue_used = false;
  };

  // Processes `packet` arriving from `from` (kNoRouter: host injection).
  // Performs the lookup, charges accesses to `acc`, rewrites the packet's
  // clue per this router's policy and returns the forwarding decision.
  Decision forward(Packet<A>& packet, RouterId from,
                   mem::AccessCounter& acc) {
    Decision d;
    core::CluePort<A>* port = portFor(from);
    if (config_.clue_enabled && port != nullptr) {
      const auto result = port->process(packet.dest, packet.clue, acc);
      d.match = result.match;
      d.clue_used = result.table_hit;
    } else {
      // Clue-less (or no port for this link): plain lookup with this
      // router's configured method.
      d.match = suite_.engine(config_.method).lookup(packet.dest, acc);
    }
    d.delivered = d.match && d.match->next_hop == id_;
    if (forwarded_ != nullptr) {
      forwarded_->inc();
      if (d.delivered) delivered_->inc();
    }

    // Outgoing clue policy (§5.3).
    if (config_.clue_enabled && config_.attach_clue && d.match) {
      if (config_.clue_export_filter &&
          !config_.clue_export_filter(d.match->prefix)) {
        packet.clue = core::ClueField::none();  // refrain, never go stale
      } else {
        int len = d.match->prefix.length();
        if (config_.truncate_to > 0) len = std::min(len, config_.truncate_to);
        packet.clue = core::ClueField::of(len);
      }
    } else if (!config_.relay_clue) {
      packet.clue = core::ClueField::none();
    }
    return d;
  }

  // Installs a reconverged FIB: a deterministic diff against the current
  // table, ONE batched engine rebuild (LookupSuite::applyRouteDelta — not one
  // per route), then a clue refresh on every port for each changed prefix,
  // removals notified before adds so no transient port state widens a
  // prefix. Returns the delta so callers can forward it (e.g. to a
  // rib::RouteUpdater feeding an epoch-versioned data plane).
  rib::FibDelta<A> applyRouteUpdate(const rib::Fib<A>& next) {
    rib::FibDelta<A> d = rib::diff(fib_, next);
    if (d.empty()) return d;
    std::vector<MatchT> upserts;
    upserts.reserve(d.added.size() + d.rerouted.size());
    upserts.insert(upserts.end(), d.added.begin(), d.added.end());
    upserts.insert(upserts.end(), d.rerouted.begin(), d.rerouted.end());
    suite_.applyRouteDelta(d.removed, upserts);
    for (auto& [neighbor, port] : ports_) {
      for (const auto& p : d.removed) port->onLocalRouteChanged(p);
      for (const auto& e : d.added) port->onLocalRouteChanged(e.prefix);
      for (const auto& e : d.rerouted) port->onLocalRouteChanged(e.prefix);
    }
    fib_ = next;
    if (config_.registry != nullptr) {
      config_.registry
          ->gauge("router_fib_entries", "Installed FIB entries",
                  {{"router", std::to_string(id_)}})
          .set(static_cast<double>(fib_.size()));
    }
    return d;
  }

  core::CluePort<A>* portFor(RouterId neighbor) {
    const auto it = ports_.find(neighbor);
    return it == ports_.end() ? nullptr : it->second.get();
  }

 private:
  RouterId id_;
  Config config_;
  rib::Fib<A> fib_;
  lookup::LookupSuite<A> suite_;
  std::unordered_map<RouterId, std::unique_ptr<core::CluePort<A>>> ports_;
  NeighborIndex next_neighbor_index_ = 0;
  obs::CounterCell* forwarded_ = nullptr;
  obs::CounterCell* delivered_ = nullptr;
};

using Router4 = Router<ip::Ip4Addr>;

}  // namespace cluert::net
