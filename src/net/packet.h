// The simulated packet: destination address plus the clue option (§3) and an
// optional MPLS label (§5.1). The per-hop trace records what each router did
// — the raw material of Figure 1.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "core/clue.h"

namespace cluert::net {

// What one router did to a packet — one point of Figure 1's curves.
struct HopRecord {
  RouterId router = kNoRouter;
  std::uint64_t accesses = 0;  // data-plane memory accesses at this router
  int bmp_length = -1;         // length of the BMP found (-1: no route)
  bool clue_used = false;      // a clue table answered or seeded the lookup
  bool delivered = false;
};

template <typename A>
struct Packet {
  A dest{};
  core::ClueField clue;
  int ttl = 64;
  std::vector<HopRecord> trace;
};

using Packet4 = Packet<ip::Ip4Addr>;

}  // namespace cluert::net
