#include "net/router.h"

namespace cluert::net {

// Router<> is instantiated in network.cc together with Network<>; this
// anchor keeps one TU per header.

}  // namespace cluert::net
