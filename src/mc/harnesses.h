// Bounded model-checking harnesses over the *production* concurrency cores.
//
// Each harness is a small closed scenario (2–3 model threads, a handful of
// operations) instantiating the very templates the data plane runs —
// pipeline::SpscRing and rib::EpochPublication — with mc::ModelPolicy, so
// the checker enumerates interleavings of the shipped algorithms, not of a
// transcription. The checked invariants are the ones DESIGN.md §10 states:
//
//   * ring: no lost items, no duplicated items, FIFO order, close() really
//     means drained, reopen() under the quiescence contract loses nothing;
//   * epoch: a reader never observes a retired version being rewritten
//     (that is a data race on the payload Vars), and the updater's grace
//     wait always terminates (a lost wakeup would be reported as a hang).
//
// Every harness is parameterised by Policy so tests can re-run it with a
// WeakenedPolicy mutant and assert the checker *finds* the violation the
// demoted ordering was preventing. harnessRegistry() exposes the named set
// (correct + mutants) for tests and tools/mc_run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mc/atomic.h"
#include "mc/model.h"
#include "pipeline/spsc_ring.h"
#include "rib/epoch.h"

namespace cluert::mc {

// -- ring: plain push/pop transfer ------------------------------------------

// Producer pushes 1..N through a capacity-2 ring (forcing wrap-around and
// backpressure), consumer pops until it has N. FIFO + no loss + no dup.
template <typename Policy, int N = 3>
void ringTransferHarness(Context& ctx) {
  pipeline::SpscRing<Var<std::uint64_t>, Policy> ring(2);
  const int producer = ctx.spawn([&ring]() {
    for (int i = 1; i <= N; ++i) {
      Var<std::uint64_t> item(static_cast<std::uint64_t>(i));
      while (!ring.tryPush(std::move(item))) {
        if (abandoned()) return;
      }
    }
  });
  std::uint64_t got[N] = {};
  int n_got = 0;
  const int consumer = ctx.spawn([&ring, &got, &n_got]() {
    Var<std::uint64_t> out;
    while (n_got < N) {
      if (ring.tryPop(out)) got[n_got++] = out.get();
      if (abandoned()) return;
    }
  });
  ctx.join(producer);
  ctx.join(consumer);
  for (int i = 0; i < N; ++i) {
    ctx.check(got[i] == static_cast<std::uint64_t>(i + 1),
              "ring delivered item " + std::to_string(got[i]) +
                  " at position " + std::to_string(i) +
                  " (lost/duplicated/reordered)");
  }
}

// -- ring: zero-copy claim/publish + front/release --------------------------

template <typename Policy, int N = 3>
void ringZeroCopyHarness(Context& ctx) {
  pipeline::SpscRing<Var<std::uint64_t>, Policy> ring(2);
  const int producer = ctx.spawn([&ring]() {
    for (int i = 1; i <= N; ++i) {
      Var<std::uint64_t>* slot = nullptr;
      while ((slot = ring.claim()) == nullptr) {
        if (abandoned()) return;
      }
      slot->set(static_cast<std::uint64_t>(i));
      ring.publish();
    }
  });
  std::uint64_t got[N] = {};
  int n_got = 0;
  const int consumer = ctx.spawn([&ring, &got, &n_got]() {
    while (n_got < N) {
      Var<std::uint64_t>* slot = ring.front();
      if (slot == nullptr) {
        if (abandoned()) return;
        continue;
      }
      got[n_got++] = slot->get();
      ring.release();
    }
  });
  ctx.join(producer);
  ctx.join(consumer);
  for (int i = 0; i < N; ++i) {
    ctx.check(got[i] == static_cast<std::uint64_t>(i + 1),
              "zero-copy ring delivered item " + std::to_string(got[i]) +
                  " at position " + std::to_string(i));
  }
}

// -- ring: close / reopen under the pipeline's quiescence contract ----------

// The Pipeline reuses each worker's ring across run() calls: workers are
// joined, reopen() runs while everything is quiescent, fresh workers are
// spawned. This harness follows that contract exactly — drain-to-close
// consumer, join, reopen, second stream, second consumer — so its
// exhaustive pass is the proof that reopen()'s relaxed store is sufficient
// *under the contract* (the join/spawn edges order it before every new
// consumer's acquire). See spsc_ring.h reopen() and DESIGN.md §10.
template <typename Policy>
void ringCloseReopenQuiescentHarness(Context& ctx) {
  pipeline::SpscRing<Var<std::uint64_t>, Policy> ring(2);
  std::uint64_t got[2] = {};
  int n_got = 0;
  auto drainer = [&ring, &got, &n_got]() {
    Var<std::uint64_t> out;
    for (;;) {
      if (abandoned()) return;
      if (ring.tryPop(out)) {
        if (n_got < 2) got[n_got] = out.get();
        ++n_got;
      } else if (ring.closed()) {
        // closed() is an acquire; a true here means every pre-close push
        // is visible, so a failed tryPop really is "drained".
        if (!ring.tryPop(out)) break;
        if (n_got < 2) got[n_got] = out.get();
        ++n_got;
      }
    }
  };

  Var<std::uint64_t> a(11);
  while (!ring.tryPush(std::move(a))) {
    if (abandoned()) return;
  }
  ring.close();
  const int c1 = ctx.spawn(drainer);
  ctx.join(c1);

  ring.reopen();  // quiescent: c1 joined, c2 not yet spawned

  Var<std::uint64_t> b(22);
  while (!ring.tryPush(std::move(b))) {
    if (abandoned()) return;
  }
  ring.close();
  const int c2 = ctx.spawn(drainer);
  ctx.join(c2);

  ctx.check(n_got == 2, "close/reopen cycle delivered " +
                            std::to_string(n_got) + " items, expected 2");
  ctx.check(got[0] == 11 && got[1] == 22,
            "close/reopen cycle delivered wrong items");
}

// -- ring: reopen with the contract BROKEN ----------------------------------

// Same protocol, but the consumer stays live across reopen(). The checker
// finds the lost-item schedule: the consumer drains stream 1, observes
// closed()==true and exits exactly while the producer is between reopen()
// and the second close() — item 22 is never consumed. Crucially the
// counterexample needs no weak-memory stale read at all (it appears under
// plain sequential interleaving), which is the demonstration that promoting
// reopen() to release would NOT fix a contract violation; only quiescence
// does. tests/mc_test.cc commits the minimized schedule as a regression.
template <typename Policy>
void ringReopenRacyHarness(Context& ctx) {
  pipeline::SpscRing<Var<std::uint64_t>, Policy> ring(2);
  std::uint64_t got[2] = {};
  int n_got = 0;
  const int consumer = ctx.spawn([&ring, &got, &n_got]() {
    Var<std::uint64_t> out;
    for (;;) {
      if (abandoned()) return;
      if (ring.tryPop(out)) {
        if (n_got < 2) got[n_got] = out.get();
        ++n_got;
      } else if (ring.closed()) {
        if (!ring.tryPop(out)) break;
        if (n_got < 2) got[n_got] = out.get();
        ++n_got;
      }
    }
  });

  Var<std::uint64_t> a(11);
  while (!ring.tryPush(std::move(a))) {
    if (abandoned()) return;
  }
  ring.close();
  ring.reopen();  // NOT quiescent: the consumer is still running
  Var<std::uint64_t> b(22);
  while (!ring.tryPush(std::move(b))) {
    if (abandoned()) return;
  }
  ring.close();
  ctx.join(consumer);
  ctx.check(n_got == 2, "consumer lost an item across a racy reopen (saw " +
                            std::to_string(n_got) + " of 2)");
}

// -- epoch: publish / pin / grace -------------------------------------------

// One reader pinning and reading the live payload, one updater doing the
// full VersionedTables publish cycle: write the spare buffer, swap it live,
// wait out the grace period, then rewrite the retired buffer (the catch-up
// write that makes the two buffers converge). The invariants fall out of
// the instrumentation itself:
//   * "no read of a retired version" == the catch-up set() must not race
//     the reader's get() — a violated grace period IS a data race here;
//   * "no grace-wait hang" == waitForReaders() must terminate — a lost
//     unpin wakeup would park the updater forever and be reported as hang.
template <typename Policy>
void epochPublishHarness(Context& ctx) {
  struct Payload {
    Var<std::uint64_t> val;
  };
  Payload buf[2];
  buf[0].val.set(1);
  buf[1].val.set(0);
  rib::EpochPublication<Payload, 2, Policy> epoch;
  epoch.storeLive(&buf[0]);

  const int reader = ctx.spawn([&epoch, &ctx]() {
    auto guard = epoch.pin(0);
    const std::uint64_t v = guard->val.get();
    ctx.check(v == 1 || v == 2,
              "reader observed half-written payload " + std::to_string(v));
  });
  const int updater = ctx.spawn([&epoch, &buf]() {
    buf[1].val.set(2);  // prepare the spare buffer (not yet live)
    Payload* retired = epoch.exchangeLive(&buf[1]);
    epoch.waitForReaders();
    // Catch-up write: races with the reader's get() iff grace was broken.
    retired->val.set(3);
  });
  ctx.join(reader);
  ctx.join(updater);
  ctx.check(buf[0].val.get() == 3, "catch-up write lost");
}

// -- registry ----------------------------------------------------------------

struct NamedHarness {
  std::string name;
  Harness fn;
  // Mutant harnesses (weakened orderings / broken contracts) are *expected*
  // to produce a violation; the correct ones must pass exhaustively.
  bool expect_violation;
  std::string note;
};

inline const std::vector<NamedHarness>& harnessRegistry() {
  using WeakSc = WeakenedPolicy<Weaken::kSeqCstToRelaxed>;
  using WeakRel = WeakenedPolicy<Weaken::kReleaseToRelaxed>;
  using WeakAcq = WeakenedPolicy<Weaken::kAcquireToRelaxed>;
  static const std::vector<NamedHarness> kRegistry = {
      {"ring_transfer", ringTransferHarness<ModelPolicy, 2>, false,
       "SPSC push/pop transfer: FIFO, no loss, no dup"},
      {"ring_zero_copy", ringZeroCopyHarness<ModelPolicy, 2>, false,
       "SPSC claim/publish + front/release paths"},
      {"ring_close_reopen", ringCloseReopenQuiescentHarness<ModelPolicy>,
       false, "close/drain/reopen under the pipeline quiescence contract"},
      {"ring_reopen_racy", ringReopenRacyHarness<ModelPolicy>, true,
       "reopen with a live consumer: loses an item even under SC"},
      {"epoch_publish", epochPublishHarness<ModelPolicy>, false,
       "pin/publish/grace/catch-up over EpochPublication"},
      {"ring_transfer_weak_release", ringTransferHarness<WeakRel>, true,
       "mutant: publish/head stores demoted to relaxed -> slot hand-off race"},
      {"ring_transfer_weak_acquire", ringTransferHarness<WeakAcq>, true,
       "mutant: index loads demoted to relaxed -> slot hand-off race"},
      {"epoch_publish_weak_sc", epochPublishHarness<WeakSc>, true,
       "mutant: SB pair demoted to relaxed -> grace period broken"},
      {"epoch_publish_weak_release", epochPublishHarness<WeakRel>, true,
       "mutant: unpin demoted to relaxed -> catch-up write races reader"},
  };
  return kRegistry;
}

}  // namespace cluert::mc
