// The instrumentation face of the model checker: drop-in `mc::Atomic<T>`
// (the std::atomic subset the lock-free cores use) and race-checked
// `mc::Var<T>` for the data those atomics are supposed to protect.
//
// `ModelPolicy` satisfies the same policy concept as sync::StdSyncPolicy, so
//
//   pipeline::SpscRing<mc::Var<std::uint64_t>, mc::ModelPolicy>
//   rib::EpochPublication<Payload, 2, mc::ModelPolicy>
//
// instantiate the *production templates* with every atomic access routed
// through the scheduler (model.h) — a scheduling point plus a store-history
// read — and every payload access race-checked against the vector clocks.
//
// `WeakenedPolicy<W>` is the seeded-mutant knob: it demotes chosen memory
// orders (seq_cst→relaxed, release→relaxed, acquire→relaxed) before they
// reach the model, so tests can assert the checker actually reports the
// violation each ordering exists to prevent. The production source is not
// touched; the demotion happens in this shim.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "mc/model.h"

namespace cluert::mc {

namespace detail {

template <typename T>
std::uint64_t toWord(T v) {
  if constexpr (std::is_pointer_v<T>) {
    return reinterpret_cast<std::uintptr_t>(v);
  } else {
    return static_cast<std::uint64_t>(v);
  }
}

template <typename T>
T fromWord(std::uint64_t w) {
  if constexpr (std::is_pointer_v<T>) {
    return reinterpret_cast<T>(static_cast<std::uintptr_t>(w));
  } else {
    return static_cast<T>(w);
  }
}

}  // namespace detail

// Which orderings a WeakenedPolicy demotes to relaxed. Each value models one
// "delete a fence the code relies on" mutation from the ISSUE: the checker
// must find a counterexample for every one of them.
enum class Weaken : std::uint8_t {
  kNone,
  kSeqCstToRelaxed,   // epoch SB pair loses its store-buffering guard
  kReleaseToRelaxed,  // publication stores stop carrying their payload
  kAcquireToRelaxed,  // consumers stop synchronising with publications
};

constexpr std::memory_order demote(std::memory_order mo, Weaken w) {
  switch (w) {
    case Weaken::kNone:
      return mo;
    case Weaken::kSeqCstToRelaxed:
      return mo == std::memory_order_seq_cst ? std::memory_order_relaxed : mo;
    case Weaken::kReleaseToRelaxed:
      return (mo == std::memory_order_release ||
              mo == std::memory_order_acq_rel)
                 ? std::memory_order_relaxed
                 : mo;
    case Weaken::kAcquireToRelaxed:
      return (mo == std::memory_order_acquire ||
              mo == std::memory_order_acq_rel)
                 ? std::memory_order_relaxed
                 : mo;
  }
  return mo;
}

// The std::atomic subset SpscRing and EpochPublication use, backed by the
// scheduler's store-history model. Values are modelled as 64-bit words
// (integers, bool, pointers).
template <typename T, Weaken W = Weaken::kNone>
class Atomic {
  static_assert(sizeof(T) <= sizeof(std::uint64_t),
                "mc::Atomic models word-sized values only");

 public:
// gcc's -Wmaybe-uninitialized misfires here: `this` is registered as an
// identity key only, never dereferenced, but the pointer escapes before the
// (empty) object is considered initialized.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  Atomic() { detail::atomicInit(this, detail::toWord(T{})); }
  explicit Atomic(T v) { detail::atomicInit(this, detail::toWord(v)); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  ~Atomic() { detail::atomicDestroy(this); }

  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order mo) const {
    return detail::fromWord<T>(
        detail::atomicLoad(this, static_cast<int>(demote(mo, W))));
  }

  void store(T v, std::memory_order mo) {
    detail::atomicStore(this, static_cast<int>(demote(mo, W)),
                        detail::toWord(v));
  }

  T exchange(T v, std::memory_order mo) {
    const std::uint64_t w = detail::toWord(v);
    return detail::fromWord<T>(detail::atomicRmw(
        this, static_cast<int>(demote(mo, W)),
        [w](std::uint64_t) { return w; }));
  }

  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_add(T delta, std::memory_order mo) {
    const std::uint64_t d = detail::toWord(delta);
    return detail::fromWord<T>(detail::atomicRmw(
        this, static_cast<int>(demote(mo, W)),
        [d](std::uint64_t old) { return old + d; }));
  }

  bool compare_exchange_strong(T& expected, T desired, std::memory_order mo) {
    // Modelled as a single RMW that only mutates on match (still one
    // modification-order event either way, which is conservative-correct
    // for the failure case: a failed CAS performs a load).
    const std::uint64_t want = detail::toWord(expected);
    const std::uint64_t next = detail::toWord(desired);
    const std::uint64_t old = detail::atomicRmw(
        this, static_cast<int>(demote(mo, W)),
        [want, next](std::uint64_t cur) { return cur == want ? next : cur; });
    if (old == want) return true;
    expected = detail::fromWord<T>(old);
    return false;
  }

 private:
  // Identity only; the scheduler owns the modelled value.
};

// Race-checked non-atomic cell: the model's stand-in for payload data (ring
// slot contents, table entries behind the epoch). Every access is validated
// against the vector clocks — a pair of conflicting accesses with no
// happens-before edge is reported as a data race with the schedule that
// produced it. Accesses are deliberately NOT scheduling points: race-ness
// is a property of the clocks, not of where the access lands in the
// interleaving, so instrumenting them would only inflate the search space.
template <typename T>
class Var {
 public:
  Var() : v_{} {
    detail::varInit(this);
    detail::varWrite(this);
  }
  explicit Var(T v) : v_(std::move(v)) {
    detail::varInit(this);
    detail::varWrite(this);
  }
  ~Var() { detail::varDestroy(this); }

  Var(const Var& o) : v_() {
    detail::varInit(this);
    detail::varRead(&o);
    v_ = o.v_;
    detail::varWrite(this);
  }
  // Copy/move are deliberately not noexcept: access checks may report a
  // race (which unwinds the harness), and slot hand-off via move-assign is
  // exactly where a broken publish/consume pairing surfaces.
  Var(Var&& o) : v_() {
    detail::varInit(this);
    detail::varRead(&o);
    v_ = std::move(o.v_);
    detail::varWrite(this);
  }
  Var& operator=(const Var& o) {
    detail::varRead(&o);
    const T tmp = o.v_;
    detail::varWrite(this);
    v_ = tmp;
    return *this;
  }
  Var& operator=(Var&& o) {
    detail::varRead(&o);
    T tmp = std::move(o.v_);
    detail::varWrite(this);
    v_ = std::move(tmp);
    return *this;
  }

  T get() const {
    detail::varRead(this);
    return v_;
  }
  void set(T v) {
    detail::varWrite(this);
    v_ = std::move(v);
  }

 private:
  T v_;
};

// Policy concept for the production templates. yield()/sleepUs() are no-ops:
// the spin loops they pace are bounded by the scheduler's progress forcing
// (model.h), so busy-waiting costs nothing and cannot hang the checker
// silently — a genuinely stuck spin is reported as a hang violation.
template <Weaken W>
struct WeakenedPolicy {
  template <typename T>
  using Atomic = mc::Atomic<T, W>;
  static void yield() {}
  static void sleepUs(unsigned) {}
};

using ModelPolicy = WeakenedPolicy<Weaken::kNone>;

}  // namespace cluert::mc
