// Scheduler + explorer implementation. See model.h for the model; DESIGN.md
// §10 for scope and approximations.
#include "mc/model.h"

#include <ucontext.h>

// ASan must be told about every fiber-stack switch: without the
// start/finish_switch_fiber pairs its instrumentation (redzone poisoning,
// fake stacks, the __asan_handle_no_return walk during `throw`) treats the
// heap-allocated fiber stacks as corrupt and aborts with a bogus
// stack-buffer-overflow. With them the checker is ASan-clean.
#if defined(__SANITIZE_ADDRESS__)
#define CLUERT_MC_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CLUERT_MC_ASAN 1
#endif
#endif
#if defined(CLUERT_MC_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <unordered_map>

#include "common/check.h"

namespace cluert::mc {
namespace {

// Thrown to unwind a fiber whose execution is being abandoned (violation
// found elsewhere, sleep-set prune, step cap). Never escapes the trampoline.
struct McAbort {};

const char* orderName(int mo) {
  switch (static_cast<std::memory_order>(mo)) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

bool isAcquireLike(int mo) {
  return mo == static_cast<int>(std::memory_order_acquire) ||
         mo == static_cast<int>(std::memory_order_acq_rel) ||
         mo == static_cast<int>(std::memory_order_seq_cst);
}

bool isReleaseLike(int mo) {
  return mo == static_cast<int>(std::memory_order_release) ||
         mo == static_cast<int>(std::memory_order_acq_rel) ||
         mo == static_cast<int>(std::memory_order_seq_cst);
}

bool isSeqCst(int mo) {
  return mo == static_cast<int>(std::memory_order_seq_cst);
}

void mergeClock(Clock& into, const Clock& from) {
  for (int i = 0; i < kMaxThreads; ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

}  // namespace

// ---------------------------------------------------------------------------

class Scheduler {
 public:
  // One store in an atomic's modification order. `stamp_own` is the storing
  // thread's own clock component at the store: rec happens-before thread T
  // iff T.clock[rec.thread] >= rec.stamp_own.
  struct StoreRec {
    std::uint64_t value = 0;
    int thread = 0;
    std::uint32_t stamp_own = 0;
    Clock release_clock{};  // meaningful iff has_release
    bool has_release = false;
  };

  struct AtomicState {
    int id = 0;  // a<id> in traces, creation order
    std::vector<StoreRec> hist;
    int last_sc_store = 0;  // index of newest seq_cst store (0 = init)
    std::array<int, kMaxThreads> max_read{};  // read-coherence floor
    bool alive = true;
  };

  struct VarState {
    int id = 0;  // v<id> in traces
    int w_thread = 0;
    std::uint32_t w_time = 0;
    std::array<std::uint32_t, kMaxThreads> r_time{};
    bool alive = true;
  };

  enum class FiberState : std::uint8_t { kUnused, kRunnable, kFinished };

  struct Fiber {
    ucontext_t ctx{};
    std::unique_ptr<char[]> stack;
    void* fake_stack = nullptr;  // ASan fake-stack handle across switches
    std::function<void()> fn;
    FiberState state = FiberState::kUnused;
    PendingOp pending;
    Clock clock{};
    // Futile-spin tracking: consecutive loads that observed nothing new
    // without an intervening store. At kFutileThreshold the next repeat
    // load is forced to the newest eligible store; with nothing newer the
    // fiber parks until anyone stores.
    int futile = 0;
    bool parked = false;
    long park_store_count = 0;
    // Distinct atomics this fiber has loaded — the polling set a spin loop
    // cycles through. Parking is only sound when NONE of them has a store
    // the fiber hasn't read yet (otherwise the forced-newest read of that
    // store is the progress the park would wrongly suppress).
    std::vector<const void*> read_objs;
  };

  struct Choice {
    bool is_sched = false;
    int chosen = 0;             // index into alts
    std::vector<int> alts;      // fiber ids (sched) or store indices (value)
    unsigned sleep = 0;         // sched: sleep-set bitmask on entry
    const void* obj = nullptr;  // value: which atomic (replay sanity check)
  };

  static constexpr std::size_t kStackSize = 256 * 1024;

  explicit Scheduler(const Harness& harness, const Options& opt)
      : harness_(harness), opt_(opt) {}

  // --- exploration driver --------------------------------------------------

  Result explore() {
    const auto t0 = std::chrono::steady_clock::now();
    Result r;
    for (;;) {
      if (opt_.time_budget_ms > 0) {
        const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        if (ms >= opt_.time_budget_ms) {
          r.hit_time_budget = true;
          break;
        }
      }
      if (r.executions >= opt_.max_executions) {
        r.hit_execution_cap = true;
        break;
      }
      runOnce();
      ++r.executions;
      if (abort_reason_ == AbortReason::kPrune) ++r.sleep_pruned;
      if (abort_reason_ == AbortReason::kTruncate) ++r.truncated;
      if (abort_reason_ == AbortReason::kViolation) {
        r.found_violation = true;
        r.violation = violation_;
        return r;
      }
      if (!backtrack()) {
        r.complete = true;
        return r;
      }
    }
    return r;
  }

  Result replaySchedule(const std::string& schedule) {
    Result r;
    if (!parseSchedule(schedule)) {
      r.found_violation = true;
      r.violation.message = "unparseable schedule string: " + schedule;
      return r;
    }
    replay_only_ = true;
    runOnce();
    r.executions = 1;
    if (abort_reason_ == AbortReason::kViolation) {
      r.found_violation = true;
      r.violation = violation_;
    } else {
      // A clean replay still reports its trace so tests can assert on it.
      r.violation.trace = trace_.str();
      r.violation.schedule = formatSchedule();
    }
    return r;
  }

  // --- fiber-side entry points (called from mc/atomic.h via detail::) ------

  std::uint64_t atomicInit(const void* obj, std::uint64_t value) {
    // Construction is not a scheduling point: the object cannot be shared
    // yet. Visibility to later-spawned threads flows through the spawn edge.
    AtomicState& a = atomics_[obj];
    a.id = next_atomic_id_++;
    a.hist.clear();
    a.last_sc_store = 0;
    a.max_read.fill(0);
    a.alive = true;
    StoreRec init;
    init.value = value;
    init.thread = current_;
    init.stamp_own = current_ >= 0 ? fibers_[current_].clock[current_] : 0;
    a.hist.push_back(init);
    return value;
  }

  void atomicDestroy(const void* obj) {
    auto it = atomics_.find(obj);
    if (it != atomics_.end()) it->second.alive = false;
  }

  std::uint64_t atomicLoad(const void* obj, int mo) {
    if (fair_ && !ghost()) {
      fibers_[current_].pending = PendingOp{OpKind::kLoad, obj, mo, -1};
      fairYield();
    } else if (!ghost()) {
      park(PendingOp{OpKind::kLoad, obj, mo, -1});
    }
    if (ghost()) return ghostLoad(obj);
    AtomicState& a = state(obj);
    Fiber& f = fibers_[current_];
    if (std::find(f.read_objs.begin(), f.read_objs.end(), obj) ==
        f.read_objs.end()) {
      f.read_objs.push_back(obj);
    }
    tick();
    // Floor below which stores are no longer readable by this thread.
    int floor = a.max_read[current_];
    for (int i = static_cast<int>(a.hist.size()) - 1; i > floor; --i) {
      if (f.clock[a.hist[i].thread] >= a.hist[i].stamp_own) {
        floor = i;
        break;
      }
    }
    if (isSeqCst(mo)) floor = std::max(floor, a.last_sc_store);
    const int top = static_cast<int>(a.hist.size()) - 1;
    int idx = top;
    if (fair_) {
      // Fairness probe: choice-free, always the newest store. fair_ may
      // have flipped while this fiber sat in park(), so this is checked
      // here and not only at entry.
      idx = top;
    } else if (floor < top) {
      if (f.futile >= kFutileThreshold) {
        // Progress forcing: a spinning thread eventually observes the
        // newest store instead of branching on stale ones forever.
        idx = top;
      } else {
        std::vector<int> alts;
        for (int i = top; i >= floor; --i) alts.push_back(i);  // newest first
        idx = alts[valueChoice(alts, obj)];
      }
    } else {
      idx = floor;
    }
    const StoreRec& rec = a.hist[idx];
    const bool progressed = idx > a.max_read[current_];
    a.max_read[current_] = std::max(a.max_read[current_], idx);
    if (rec.has_release && isAcquireLike(mo)) {
      mergeClock(f.clock, rec.release_clock);
    }
    if (progressed) {
      f.futile = 0;
    } else {
      ++f.futile;
    }
    traceOp("load", obj, mo, rec.value, idx);
    return rec.value;
  }

  void atomicStore(const void* obj, int mo, std::uint64_t value) {
    if (fair_ && !ghost()) {
      fibers_[current_].pending = PendingOp{OpKind::kStore, obj, mo, -1};
      fairYield();
    } else if (!ghost()) {
      park(PendingOp{OpKind::kStore, obj, mo, -1});
    }
    if (ghost()) return ghostStore(obj, value);
    AtomicState& a = state(obj);
    Fiber& f = fibers_[current_];
    tick();
    StoreRec rec;
    rec.value = value;
    rec.thread = current_;
    rec.stamp_own = f.clock[current_];
    if (isReleaseLike(mo)) {
      rec.has_release = true;
      rec.release_clock = f.clock;
    }
    a.hist.push_back(rec);
    const int idx = static_cast<int>(a.hist.size()) - 1;
    if (isSeqCst(mo)) a.last_sc_store = idx;
    a.max_read[current_] = idx;
    f.futile = 0;
    ++store_count_;
    traceOp("store", obj, mo, value, idx);
  }

  std::uint64_t atomicRmw(
      const void* obj, int mo,
      const std::function<std::uint64_t(std::uint64_t)>& fn) {
    if (fair_ && !ghost()) {
      fibers_[current_].pending = PendingOp{OpKind::kRmw, obj, mo, -1};
      fairYield();
    } else if (!ghost()) {
      park(PendingOp{OpKind::kRmw, obj, mo, -1});
    }
    if (ghost()) return ghostRmw(obj, fn);
    AtomicState& a = state(obj);
    Fiber& f = fibers_[current_];
    tick();
    // An RMW reads the newest store in modification order, always.
    const StoreRec& old = a.hist.back();
    const std::uint64_t old_value = old.value;
    if (old.has_release && isAcquireLike(mo)) {
      mergeClock(f.clock, old.release_clock);
    }
    StoreRec rec;
    rec.value = fn(old_value);
    rec.thread = current_;
    rec.stamp_own = f.clock[current_];
    // Release-sequence continuation: an RMW in the middle of a release
    // sequence keeps the head's release clock visible to later acquirers.
    if (isReleaseLike(mo) || old.has_release) {
      rec.has_release = true;
      if (old.has_release) rec.release_clock = old.release_clock;
      if (isReleaseLike(mo)) mergeClock(rec.release_clock, f.clock);
    }
    a.hist.push_back(rec);
    const int idx = static_cast<int>(a.hist.size()) - 1;
    if (isSeqCst(mo)) a.last_sc_store = idx;
    a.max_read[current_] = idx;
    f.futile = 0;
    ++store_count_;
    traceOp("rmw", obj, mo, rec.value, idx);
    return old_value;
  }

  void varInit(const void* obj) {
    VarState& v = vars_[obj];
    v.id = next_var_id_++;
    v.w_thread = current_ >= 0 ? current_ : 0;
    v.w_time = current_ >= 0 ? fibers_[current_].clock[current_] : 0;
    v.r_time.fill(0);
    v.alive = true;
  }

  void varDestroy(const void* obj) {
    auto it = vars_.find(obj);
    if (it != vars_.end()) it->second.alive = false;
  }

  void varRead(const void* obj) {
    if (ghost()) return;
    VarState& v = varState(obj);
    Fiber& f = fibers_[current_];
    if (v.w_thread != current_ && f.clock[v.w_thread] < v.w_time) {
      failHere("data race: T" + std::to_string(current_) + " reads v" +
               std::to_string(v.id) + " unordered with T" +
               std::to_string(v.w_thread) + "'s write");
      return;
    }
    v.r_time[current_] = ++f.clock[current_];
  }

  void varWrite(const void* obj) {
    if (ghost()) return;
    VarState& v = varState(obj);
    Fiber& f = fibers_[current_];
    if (v.w_thread != current_ && f.clock[v.w_thread] < v.w_time) {
      failHere("data race: T" + std::to_string(current_) + " writes v" +
               std::to_string(v.id) + " unordered with T" +
               std::to_string(v.w_thread) + "'s write");
      return;
    }
    for (int t = 0; t < kMaxThreads; ++t) {
      if (t != current_ && f.clock[t] < v.r_time[t]) {
        failHere("data race: T" + std::to_string(current_) + " writes v" +
                 std::to_string(v.id) + " unordered with T" +
                 std::to_string(t) + "'s read");
        return;
      }
    }
    v.w_thread = current_;
    v.w_time = ++f.clock[current_];
  }

  int spawn(std::function<void()> fn) {
    CLUERT_CHECK(current_ >= 0) << "mc::spawn outside an execution";
    int tid = -1;
    for (int i = 0; i < kMaxThreads; ++i) {
      if (fibers_[i].state == FiberState::kUnused) {
        tid = i;
        break;
      }
    }
    CLUERT_CHECK(tid >= 0) << "mc harness exceeds kMaxThreads=" << kMaxThreads;
    Fiber& child = fibers_[tid];
    child.fn = std::move(fn);
    child.state = FiberState::kRunnable;
    child.pending = PendingOp{};  // kThreadStart
    child.clock = fibers_[current_].clock;  // spawn edge
    child.futile = 0;
    child.parked = false;
    child.read_objs.clear();
    tick();
    ++child.clock[tid];
    prepareFiber(tid);
    // A spawn can unblock futile spinners (and is progress for the fairness
    // probe's quiet-sweep accounting) just like a store.
    ++store_count_;
    trace("spawn T" + std::to_string(tid));
    return tid;
  }

  void join(int tid) {
    if (ghost()) {
      // The joiner's scope may own objects (the ring, the epoch) that the
      // target is still touching; even while abandoning an execution, join
      // must not return before the target finished.
      while (fibers_[tid].state != FiberState::kFinished) ghostYield();
      return;
    }
    if (fair_) {
      fibers_[current_].pending = PendingOp{OpKind::kJoin, nullptr, 0, tid};
      while (fibers_[tid].state != FiberState::kFinished && !ghost()) {
        fairYield();
      }
    } else {
      park(PendingOp{OpKind::kJoin, nullptr, 0, tid});
    }
    if (ghost()) {
      // The execution was abandoned while we were waiting here; the
      // enabledness guarantee no longer holds, so wait out the target
      // explicitly before letting the joiner's scope unwind.
      while (fibers_[tid].state != FiberState::kFinished) ghostYield();
      return;
    }
    // Scheduled only once the target finished (enabledness check, both in
    // DFS and in the fairness probe's sweep).
    tick();
    mergeClock(fibers_[current_].clock, fibers_[tid].clock);
    trace("join T" + std::to_string(tid));
  }

  void check(bool cond, const std::string& msg) {
    if (ghost()) return;
    if (!cond) failHere("harness check failed: " + msg);
  }

  // See mc::abandoned(). Yields first so cleanup round-robin keeps turning
  // even when a loop's only instrumented op is the poll itself.
  bool abandonedNow() {
    if (abort_reason_ == AbortReason::kNone) return false;
    ghostYield();
    return abort_reason_ != AbortReason::kNone;
  }

  void runCurrentFiber() {
    Fiber& f = fibers_[current_];
    try {
      f.fn();
    } catch (const McAbort&) {
      // Execution abandoned; just finish unwinding this fiber.
    }
    f.state = FiberState::kFinished;
    ++store_count_;  // finishing can unblock joiners and futile spinners
    trace("T" + std::to_string(current_) + " exits");
    switchToMainDying(f);
  }

 private:
  enum class AbortReason : std::uint8_t {
    kNone,
    kViolation,
    kPrune,
    kTruncate,
  };

  // --- one execution -------------------------------------------------------

  void runOnce() {
    abort_reason_ = AbortReason::kNone;
    pos_ = 0;
    cur_sleep_ = 0;
    preempts_ = 0;
    steps_ = 0;
    store_count_ = 0;
    fair_ = false;
    running_before_ = -1;
    next_atomic_id_ = 0;
    next_var_id_ = 0;
    atomics_.clear();
    vars_.clear();
    trace_.str(std::string());
    for (Fiber& f : fibers_) f.state = FiberState::kUnused;

    // Fiber 0 is the harness body itself.
    Fiber& main_fiber = fibers_[0];
    main_fiber.fn = [this]() {
      Context ctx(this);
      harness_(ctx);
    };
    main_fiber.state = FiberState::kRunnable;
    main_fiber.pending = PendingOp{};
    main_fiber.clock = Clock{};
    main_fiber.clock[0] = 1;
    main_fiber.futile = 0;
    main_fiber.parked = false;
    main_fiber.read_objs.clear();
    current_ = 0;
    prepareFiber(0);

    for (;;) {
      std::vector<int> enabled = enabledFibers();
      if (enabled.empty()) {
        if (anyLive()) {
          if (abort_reason_ == AbortReason::kNone) {
            if (allBlockedInJoin()) {
              fail("deadlock: every live thread is blocked in join()");
            } else {
              fairProbe();
            }
          }
          // The probe may have run the execution to natural completion —
          // only a still-live fiber set needs the ghost sweep (and only
          // that path may mark the execution pruned).
          if (anyLive()) abortAll();
        }
        break;
      }
      const int t = scheduleChoice(enabled);
      if (t < 0) {  // sleep-set dead end, or replay prefix exhausted
        abortAll();
        break;
      }
      if (++steps_ > opt_.max_steps && abort_reason_ == AbortReason::kNone) {
        abort_reason_ = AbortReason::kTruncate;
        abortAll();
        break;
      }
      resume(t);
      if (abort_reason_ != AbortReason::kNone) {
        abortAll();
        break;
      }
      running_before_ = t;
    }
    current_ = -1;
  }

  void resume(int t) {
    // Wake sleeping threads whose pending op depends on what t does next —
    // the sibling branch they represent is no longer redundant.
    const PendingOp& op = fibers_[t].pending;
    for (int u = 0; u < kMaxThreads; ++u) {
      if ((cur_sleep_ >> u) & 1u) {
        if (dependent(op, fibers_[u].pending)) cur_sleep_ &= ~(1u << u);
      }
    }
    current_ = t;
    switchToFiber(t);
    current_ = -1;
  }

  // Round-robin every still-live fiber in ghost mode until all finish, so
  // their stacks (and the C++ objects on them) are clean before the next
  // execution reuses them. Ghost semantics are SC with real effects, so the
  // production algorithms terminate under this fair schedule.
  void abortAll() {
    if (abort_reason_ == AbortReason::kNone) abort_reason_ = AbortReason::kPrune;
    long sweeps = 0;
    for (;;) {
      bool any_live = false;
      for (int i = 0; i < kMaxThreads; ++i) {
        if (fibers_[i].state != FiberState::kRunnable) continue;
        any_live = true;
        current_ = i;
        switchToFiber(i);
        current_ = -1;
      }
      if (!any_live) break;
      if (++sweeps >= 1'000'000) {
        // A fiber is spinning on state nobody will ever change — usually
        // the very hang the violation below describes. The stacks cannot
        // be reclaimed without running the loop dry, so surface the
        // counterexample before giving up instead of dying silently.
        std::fprintf(stderr,
                     "mc: abandoned execution failed to terminate under "
                     "ghost scheduling.\n  violation: %s\n  schedule: %s\n",
                     violation_.message.c_str(), violation_.schedule.c_str());
        CLUERT_CHECK(false) << "mc: unreclaimable hung execution";
      }
    }
  }

  bool allBlockedInJoin() const {
    for (const Fiber& f : fibers_) {
      if (f.state != FiberState::kRunnable) continue;
      if (f.pending.kind != OpKind::kJoin) return false;
    }
    return true;
  }

  // Consecutive full probe sweeps in which no fiber stored, spawned or
  // finished before the hang verdict. Must exceed the longest run of loads
  // any loop body performs between two exits/stores — a polling loop whose
  // exit condition is already satisfied still needs a handful of reads to
  // notice. 64 is far above any loop in the checked cores and still costs
  // microseconds.
  static constexpr long kFairQuietSweeps = 64;

  // Futile parking has a blind spot: it equates "this load cannot observe a
  // new value" with "this thread cannot progress", but a loop's exit
  // condition may already be satisfied by the values it keeps re-reading
  // (e.g. a drained ring whose closed flag the consumer has already seen).
  // So an all-parked state is only a hang *candidate*. This probe runs the
  // remainder of the execution under a fair, choice-free schedule —
  // round-robin, every load forced to the newest store, invariant and race
  // checks still live — which any real scheduler would eventually provide.
  // A loop that can make progress does, and the execution completes
  // normally; a genuine lost wakeup keeps every fiber load-spinning without
  // a single store/spawn/finish, which confirms the hang. The probe adds no
  // choice points, so replaying the recorded prefix reproduces its outcome
  // deterministically.
  void fairProbe() {
    fair_ = true;
    for (Fiber& f : fibers_) {
      if (f.state == FiberState::kRunnable) {
        f.parked = false;
        f.futile = 0;
      }
    }
    long quiet_sweeps = 0;
    while (abort_reason_ == AbortReason::kNone) {
      bool resumed_any = false;
      const long progress_before = store_count_;
      for (int i = 0; i < kMaxThreads; ++i) {
        if (abort_reason_ != AbortReason::kNone) break;
        Fiber& f = fibers_[i];
        if (f.state != FiberState::kRunnable) continue;
        if (f.pending.kind == OpKind::kJoin &&
            fibers_[f.pending.join_target].state != FiberState::kFinished) {
          continue;  // blocked join; its target may finish this sweep
        }
        resumed_any = true;
        current_ = i;
        switchToFiber(i);
        current_ = -1;
      }
      if (!resumed_any) {
        if (anyLive()) {
          fail("deadlock: every live thread is blocked in join()");
        }
        break;  // all finished
      }
      if (store_count_ == progress_before) {
        if (++quiet_sweeps >= kFairQuietSweeps) {
          fail(
              "hang: every live thread is spinning on loads that can never "
              "observe a new value (lost wakeup / livelock)");
          break;
        }
      } else {
        quiet_sweeps = 0;
      }
    }
    fair_ = false;
  }

  // --- scheduling ----------------------------------------------------------

  std::vector<int> enabledFibers() {
    std::vector<int> out;
    for (int i = 0; i < kMaxThreads; ++i) {
      Fiber& f = fibers_[i];
      if (f.state != FiberState::kRunnable) continue;
      if (f.pending.kind == OpKind::kJoin &&
          fibers_[f.pending.join_target].state != FiberState::kFinished) {
        continue;
      }
      if (f.parked) {
        if (store_count_ == f.park_store_count) continue;
        f.parked = false;  // something was stored since; spin may progress
        f.futile = 0;
      }
      out.push_back(i);
    }
    return out;
  }

  bool anyLive() const {
    for (const Fiber& f : fibers_) {
      if (f.state == FiberState::kRunnable) return true;
    }
    return false;
  }

  int scheduleChoice(const std::vector<int>& enabled) {
    if (pos_ < prescribed_) {
      Choice& c = path_[pos_];
      // Divergence from the prescribed path (kind mismatch or a thread
      // that is no longer enabled) means a committed schedule no longer
      // matches the harness — in replay mode abandon the remaining prefix
      // and finish cooperatively; in DFS any divergence is a checker bug.
      if (!c.is_sched) {
        CLUERT_CHECK(replay_only_)
            << "mc replay diverged: expected sched choice";
        prescribed_ = pos_;
        return enabled[0];
      }
      ++pos_;
      cur_sleep_ = c.sleep;
      const int t = c.alts[c.chosen];
      if (std::find(enabled.begin(), enabled.end(), t) == enabled.end()) {
        CLUERT_CHECK(replay_only_) << "mc replay diverged: T" << t
                                   << " not enabled at step " << pos_;
        return enabled[0];
      }
      accountPreemption(t, enabled);
      return t;
    }
    if (replay_only_) return enabled[0];  // past-prefix: run cooperatively
    Choice c;
    c.is_sched = true;
    c.sleep = cur_sleep_;
    // Prefer continuing the running thread (free); preemptions cost budget.
    const bool can_continue =
        running_before_ >= 0 &&
        std::find(enabled.begin(), enabled.end(), running_before_) !=
            enabled.end();
    auto asleep = [this](int t) { return ((cur_sleep_ >> t) & 1u) != 0; };
    if (can_continue && !asleep(running_before_)) {
      c.alts.push_back(running_before_);
    }
    if (!can_continue || preempts_ < opt_.preemption_bound) {
      for (int t : enabled) {
        if (t == running_before_ || asleep(t)) continue;
        c.alts.push_back(t);
      }
    }
    if (c.alts.empty()) return -1;  // everything enabled is asleep: prune
    c.chosen = 0;
    path_.push_back(c);
    prescribed_ = path_.size();
    ++pos_;
    const int t = c.alts[0];
    accountPreemption(t, enabled);
    return t;
  }

  void accountPreemption(int t, const std::vector<int>& enabled) {
    if (running_before_ >= 0 && t != running_before_ &&
        std::find(enabled.begin(), enabled.end(), running_before_) !=
            enabled.end()) {
      ++preempts_;
    }
  }

  int valueChoice(const std::vector<int>& alts, const void* obj) {
    if (pos_ < prescribed_) {
      Choice& c = path_[pos_];
      if (c.is_sched) {  // kind mismatch: stale schedule (see scheduleChoice)
        CLUERT_CHECK(replay_only_)
            << "mc replay diverged: expected value choice";
        prescribed_ = pos_;
        return 0;
      }
      ++pos_;
      if (c.chosen < static_cast<int>(alts.size())) return c.chosen;
      return 0;  // edited-prefix drift; degrade to newest
    }
    if (replay_only_) return 0;
    Choice c;
    c.is_sched = false;
    c.alts = alts;
    c.obj = obj;
    c.chosen = 0;
    path_.push_back(c);
    prescribed_ = path_.size();
    ++pos_;
    return 0;
  }

  // Advance the deepest choice point with an unexplored sibling; returns
  // false when the whole tree is exhausted.
  bool backtrack() {
    while (!path_.empty()) {
      Choice& c = path_.back();
      if (c.is_sched && c.chosen + 1 < static_cast<int>(c.alts.size())) {
        // Sleep-set rule: the branch just explored goes to sleep in its
        // siblings until a dependent op wakes it.
        c.sleep |= 1u << c.alts[c.chosen];
        ++c.chosen;
        prescribed_ = path_.size();
        return true;
      }
      if (!c.is_sched && c.chosen + 1 < static_cast<int>(c.alts.size())) {
        ++c.chosen;
        prescribed_ = path_.size();
        return true;
      }
      path_.pop_back();
    }
    return false;
  }

  static bool dependent(const PendingOp& a, const PendingOp& b) {
    if (a.kind == OpKind::kJoin || b.kind == OpKind::kJoin) return true;
    if (a.kind == OpKind::kThreadStart || b.kind == OpKind::kThreadStart) {
      return true;  // conservative: a fresh thread's first real op is unknown
    }
    if (a.obj != b.obj) return false;
    return a.kind != OpKind::kLoad || b.kind != OpKind::kLoad;
  }

  // --- fiber plumbing ------------------------------------------------------

  static void trampoline();

  // The three stack transitions, each wrapped in the sanitizer fiber
  // annotations (no-ops outside ASan builds):
  //   * main -> fiber: every resume (DFS, abortAll sweep, fairness probe);
  //   * fiber -> main: park/ghostYield/fairYield, resumed later;
  //   * fiber -> main, dying: the fiber never runs again, so its ASan fake
  //     stack is destroyed (nullptr save) before the final switch.
  void switchToFiber(int t) {
    Fiber& f = fibers_[t];
#if defined(CLUERT_MC_ASAN)
    __sanitizer_start_switch_fiber(&main_fake_stack_, f.stack.get(),
                                   kStackSize);
#endif
    swapcontext(&main_ctx_, &f.ctx);
#if defined(CLUERT_MC_ASAN)
    __sanitizer_finish_switch_fiber(main_fake_stack_, nullptr, nullptr);
#endif
  }

  void switchToMain(Fiber& f) {
#if defined(CLUERT_MC_ASAN)
    __sanitizer_start_switch_fiber(&f.fake_stack, main_stack_bottom_,
                                   main_stack_size_);
#endif
    swapcontext(&f.ctx, &main_ctx_);
#if defined(CLUERT_MC_ASAN)
    __sanitizer_finish_switch_fiber(f.fake_stack, &main_stack_bottom_,
                                    &main_stack_size_);
#endif
  }

  void switchToMainDying(Fiber& f) {
#if defined(CLUERT_MC_ASAN)
    __sanitizer_start_switch_fiber(nullptr, main_stack_bottom_,
                                   main_stack_size_);
#endif
    swapcontext(&f.ctx, &main_ctx_);
  }

  // Called on fiber entry (trampoline) and when a fiber resumes from
  // switchToMain: records the bounds of the stack we came from, which on
  // first entry is the real OS thread stack main_ctx_ runs on.
  void finishSwitchIntoFiber(void* fake_stack_save) {
#if defined(CLUERT_MC_ASAN)
    __sanitizer_finish_switch_fiber(fake_stack_save, &main_stack_bottom_,
                                    &main_stack_size_);
#else
    (void)fake_stack_save;
#endif
  }

  void prepareFiber(int tid) {
    Fiber& f = fibers_[tid];
    if (!f.stack) f.stack = std::make_unique<char[]>(kStackSize);
    getcontext(&f.ctx);
    f.ctx.uc_stack.ss_sp = f.stack.get();
    f.ctx.uc_stack.ss_size = kStackSize;
    f.ctx.uc_link = &main_ctx_;
    makecontext(&f.ctx, &Scheduler::trampoline, 0);
  }

  // Announce the next op and hand control to the explorer. On return the
  // explorer has selected this fiber to perform exactly that op (or the
  // execution is being abandoned — the caller re-checks ghost()).
  void park(PendingOp op) {
    Fiber& f = fibers_[current_];
    if (f.futile >= kFutileThreshold && op.kind == OpKind::kLoad &&
        !anythingUnread(f, op.obj)) {
      // This spin made no progress, and no object the fiber polls has a
      // store it hasn't read: stop offering it to the scheduler until
      // someone stores (or report a hang if nobody ever can).
      f.parked = true;
      f.park_store_count = store_count_;
    }
    f.pending = op;
    switchToMain(f);
  }

  // True when some atomic this fiber polls (its read set plus the object it
  // is about to load) carries a store the fiber has not read yet — i.e. a
  // futile-looking spin can still be forced forward.
  bool anythingUnread(const Fiber& f, const void* about_to_read) {
    const int tid = static_cast<int>(&f - fibers_.data());
    auto has_unread = [this, tid](const void* obj) {
      auto it = atomics_.find(obj);
      if (it == atomics_.end() || !it->second.alive) return false;
      return static_cast<int>(it->second.hist.size()) - 1 >
             it->second.max_read[tid];
    };
    if (has_unread(about_to_read)) return true;
    for (const void* obj : f.read_objs) {
      if (has_unread(obj)) return true;
    }
    return false;
  }

  // Ghost mode: the execution is being abandoned (violation recorded,
  // sleep-set prune, step cap) or a fiber is unwinding. Instrumented ops
  // switch to choice-free sequentially-consistent semantics — real effects
  // so every loop still terminates, but no choice points, no race checks,
  // and crucially no exceptions: abandonment must traverse production
  // noexcept destructors (ReadGuard::~ReadGuard parks via fetch_add), so
  // fibers run to natural completion instead of being unwound forcibly.
  bool ghost() const {
    return current_ < 0 || abort_reason_ != AbortReason::kNone ||
           std::uncaught_exceptions() > 0;
  }

  // Cooperative yield inside the fairness probe: hand control back to
  // fairProbe()'s round-robin sweep so every live fiber advances one op at
  // a time. Distinct from park() in that no choice is recorded and no
  // futile-parking applies.
  void fairYield() {
    if (current_ < 0 || std::uncaught_exceptions() > 0) return;
    switchToMain(fibers_[current_]);
  }

  // Cooperative yield inside ghost mode so abortAll() can round-robin the
  // remaining fibers (a spinning producer still needs its consumer to run).
  // Never swaps while an exception is in flight on this fiber.
  void ghostYield() {
    if (current_ < 0 || std::uncaught_exceptions() > 0) return;
    switchToMain(fibers_[current_]);
  }

  std::uint64_t ghostLoad(const void* obj) {
    ghostYield();
    auto it = atomics_.find(obj);
    return it == atomics_.end() || it->second.hist.empty()
               ? 0
               : it->second.hist.back().value;
  }

  void ghostStore(const void* obj, std::uint64_t value) {
    ghostYield();
    auto it = atomics_.find(obj);
    if (it == atomics_.end()) return;
    StoreRec rec;
    rec.value = value;
    rec.thread = current_ >= 0 ? current_ : 0;
    it->second.hist.push_back(rec);
  }

  std::uint64_t ghostRmw(const void* obj,
                         const std::function<std::uint64_t(std::uint64_t)>& fn) {
    ghostYield();
    auto it = atomics_.find(obj);
    if (it == atomics_.end() || it->second.hist.empty()) return 0;
    const std::uint64_t old = it->second.hist.back().value;
    StoreRec rec;
    rec.value = fn(old);
    rec.thread = current_ >= 0 ? current_ : 0;
    it->second.hist.push_back(rec);
    return old;
  }

  AtomicState& state(const void* obj) {
    auto it = atomics_.find(obj);
    CLUERT_CHECK(it != atomics_.end() && it->second.alive)
        << "mc::Atomic used outside its registered lifetime";
    return it->second;
  }

  VarState& varState(const void* obj) {
    auto it = vars_.find(obj);
    CLUERT_CHECK(it != vars_.end() && it->second.alive)
        << "mc::Var used outside its registered lifetime";
    return it->second;
  }

  void tick() { ++fibers_[current_].clock[current_]; }

  // --- failure + reporting -------------------------------------------------

  void fail(const std::string& msg) {
    if (abort_reason_ != AbortReason::kNone) return;
    abort_reason_ = AbortReason::kViolation;
    violation_.message = msg;
    violation_.schedule = formatSchedule();
    violation_.trace = trace_.str();
  }

  // Failure raised from a running fiber: record, then unwind self.
  void failHere(const std::string& msg) {
    trace("T" + std::to_string(current_) + " !! " + msg);
    fail(msg);
    throw McAbort{};
  }

  std::string formatSchedule() const {
    std::string out = "mc1:";
    for (std::size_t i = 0; i < pos_ && i < path_.size(); ++i) {
      const Choice& c = path_[i];
      if (i > 0) out += ',';
      if (c.is_sched) {
        out += 's' + std::to_string(c.alts[c.chosen]);
      } else {
        out += 'v' + std::to_string(c.chosen);
      }
    }
    return out;
  }

  bool parseSchedule(const std::string& schedule) {
    if (schedule.rfind("mc1:", 0) != 0) return false;
    path_.clear();
    std::string body = schedule.substr(4);
    std::stringstream ss(body);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (tok.size() < 2 || (tok[0] != 's' && tok[0] != 'v')) return false;
      Choice c;
      c.is_sched = tok[0] == 's';
      const int n = std::atoi(tok.c_str() + 1);
      if (c.is_sched) {
        // Replay stores the *fiber id*; wrap it as a one-alt choice.
        c.alts = {n};
        c.chosen = 0;
      } else {
        c.chosen = n;
      }
      path_.push_back(c);
    }
    prescribed_ = path_.size();
    return true;
  }

  void traceOp(const char* what, const void* obj, int mo, std::uint64_t value,
               int idx) {
    if (!opt_.collect_trace) return;
    const AtomicState& a = atomics_[obj];
    trace_ << "T" << current_ << " a" << a.id << "." << what << "("
           << orderName(mo) << ") = " << value << " [#" << idx << "]\n";
  }

  void trace(const std::string& line) {
    if (!opt_.collect_trace) return;
    trace_ << line << "\n";
  }

  // --- state ---------------------------------------------------------------

  const Harness& harness_;
  Options opt_;

  std::array<Fiber, kMaxThreads> fibers_;
  ucontext_t main_ctx_{};
  // ASan fiber-annotation state for the explorer's own (OS thread) stack:
  // the fake-stack handle saved while a fiber runs, and the bounds learned
  // from the first finish_switch on a fiber (unused outside ASan builds).
  [[maybe_unused]] void* main_fake_stack_ = nullptr;
  [[maybe_unused]] const void* main_stack_bottom_ = nullptr;
  [[maybe_unused]] std::size_t main_stack_size_ = 0;
  int current_ = -1;
  int running_before_ = -1;

  std::vector<Choice> path_;
  std::size_t prescribed_ = 0;
  std::size_t pos_ = 0;
  unsigned cur_sleep_ = 0;
  int preempts_ = 0;
  long steps_ = 0;
  long store_count_ = 0;
  bool replay_only_ = false;
  // True while fairProbe() is driving the execution (choice-free fair
  // schedule); instrumented ops switch from park() to fairYield().
  bool fair_ = false;

  std::unordered_map<const void*, AtomicState> atomics_;
  std::unordered_map<const void*, VarState> vars_;
  int next_atomic_id_ = 0;
  int next_var_id_ = 0;

  AbortReason abort_reason_ = AbortReason::kNone;
  Violation violation_;
  std::ostringstream trace_;
};

namespace {
Scheduler* g_current = nullptr;  // exploration is single-OS-threaded
}

void Scheduler::trampoline() {
  // First entry onto this fiber stack: no fake stack was saved for it
  // (nullptr), and the bounds reported back are the main thread's stack.
  g_current->finishSwitchIntoFiber(nullptr);
  g_current->runCurrentFiber();
}

// ---------------------------------------------------------------------------

int Context::spawn(std::function<void()> fn) { return s_->spawn(std::move(fn)); }
void Context::join(int tid) { s_->join(tid); }
void Context::check(bool cond, const std::string& msg) { s_->check(cond, msg); }

std::string Result::summary() const {
  std::ostringstream os;
  if (found_violation) {
    os << "VIOLATION after " << executions << " executions: "
       << violation.message << "\n  schedule: " << violation.schedule;
  } else if (complete) {
    os << "complete: " << executions << " executions, " << sleep_pruned
       << " sleep-pruned, " << truncated << " truncated, no violation";
  } else {
    os << "bounded: " << executions << " executions ("
       << (hit_time_budget ? "time budget" : "execution cap")
       << "), no violation";
  }
  return os.str();
}

Result explore(const Harness& harness, const Options& options) {
  CLUERT_CHECK(g_current == nullptr) << "nested mc exploration";
  Scheduler s(harness, options);
  g_current = &s;
  Result r = s.explore();
  g_current = nullptr;
  return r;
}

Result replay(const Harness& harness, const std::string& schedule,
              const Options& options) {
  CLUERT_CHECK(g_current == nullptr) << "nested mc exploration";
  Scheduler s(harness, options);
  g_current = &s;
  Result r = s.replaySchedule(schedule);
  g_current = nullptr;
  return r;
}

bool abandoned() {
  return g_current != nullptr && g_current->abandonedNow();
}

namespace detail {

Scheduler* current() { return g_current; }

std::uint64_t atomicInit(const void* obj, std::uint64_t value) {
  CLUERT_CHECK(g_current != nullptr) << "mc::Atomic outside an exploration";
  return g_current->atomicInit(obj, value);
}
void atomicDestroy(const void* obj) {
  if (g_current != nullptr) g_current->atomicDestroy(obj);
}
std::uint64_t atomicLoad(const void* obj, int mo) {
  return g_current->atomicLoad(obj, mo);
}
void atomicStore(const void* obj, int mo, std::uint64_t value) {
  g_current->atomicStore(obj, mo, value);
}
std::uint64_t atomicRmw(const void* obj, int mo,
                        const std::function<std::uint64_t(std::uint64_t)>& fn) {
  return g_current->atomicRmw(obj, mo, fn);
}
void varInit(const void* obj) {
  CLUERT_CHECK(g_current != nullptr) << "mc::Var outside an exploration";
  g_current->varInit(obj);
}
void varDestroy(const void* obj) {
  if (g_current != nullptr) g_current->varDestroy(obj);
}
void varRead(const void* obj) { g_current->varRead(obj); }
void varWrite(const void* obj) { g_current->varWrite(obj); }

}  // namespace detail

}  // namespace cluert::mc
