// A stateless (re-execution based) model checker for the lock-free cores.
//
// What it is: a cooperative scheduler plus an instrumented-atomics model
// (mc/atomic.h) that together enumerate thread interleavings of small
// bounded harnesses (mc/harnesses.h) over the *production* SpscRing and
// EpochPublication code — the same templates the data plane instantiates,
// parameterised by mc::ModelPolicy instead of sync::StdSyncPolicy.
//
// Execution model (operational, relacy-style — DESIGN.md §10 documents the
// exact guarantees and deliberate approximations):
//
//   * Harness "threads" are ucontext fibers multiplexed on the calling OS
//     thread; only one ever runs, and every instrumented atomic access is a
//     scheduling point: the fiber announces the operation and parks, the
//     explorer picks who performs next. DFS over these choices, replayable
//     by a recorded choice string.
//   * Weak memory is modelled per atomic as a store history plus vector
//     clocks: a load may read any store not superseded for the loading
//     thread by happens-before, read coherence, or (for seq_cst ops) the
//     latest seq_cst store — *which* store it reads is itself a DFS choice
//     point. Release stores carry a clock that acquire loads join; RMWs
//     read the newest store and continue release sequences.
//   * Non-atomic data (mc::Var) is not a scheduling point at all: accesses
//     are checked purely against the clocks — two conflicting accesses
//     without a happens-before edge are a data race, reported with the
//     schedule that produced them. This is what catches a demoted
//     release/acquire pair: the ring slot hand-off or the retired-buffer
//     catch-up writes become racy the moment the pairing breaks.
//   * Pruning: sleep sets (a branch already explored from a choice point
//     puts that thread to sleep in sibling branches until a dependent
//     operation wakes it) and a preemption bound (switching away from a
//     runnable thread costs budget; cooperative switches are free).
//   * Progress: a thread that keeps re-reading stores it has already seen
//     is eventually forced to the newest eligible store, and parks entirely
//     when nothing newer exists — so spin loops (grace wait, ring
//     backpressure) stay finite. An all-parked state is only a hang
//     *candidate*: a fairness probe then runs the remainder under a fair
//     choice-free schedule (checks still live), so a loop whose exit
//     condition is already satisfied finishes normally, and only a set of
//     threads that spin without any store/spawn/finish is reported as a
//     real livelock/lost-wakeup hang.
//
// Counterexamples serialize as schedule strings ("mc1:s0,s1,v1,...") that
// replay() turns back into a full per-operation trace; tests/mc_test.cc
// commits them as Mc.* regressions.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cluert::mc {

inline constexpr int kMaxThreads = 4;

// Consecutive loads with no new store observed before a spinning thread is
// (a) forced to the newest eligible store, then (b) parked until anyone
// stores. Kept small: each futile spin iteration is a scheduling point, so
// the threshold multiplies the DFS fan-out of every polling loop. Soundness
// does not depend on the value — parking only defers a thread that provably
// cannot observe progress, and any store re-enables it.
inline constexpr int kFutileThreshold = 4;

using Clock = std::array<std::uint32_t, kMaxThreads>;

enum class OpKind : std::uint8_t {
  kThreadStart,  // fiber exists; scheduling it runs user code to the 1st op
  kLoad,
  kStore,
  kRmw,
  kJoin,
};

// What a parked fiber is about to do — the explorer's full knowledge of the
// frontier, used for enabledness, sleep-set dependency tests and traces.
struct PendingOp {
  OpKind kind = OpKind::kThreadStart;
  const void* obj = nullptr;
  int order = 0;  // std::memory_order as int
  int join_target = -1;
};

struct Violation {
  std::string message;
  std::string schedule;  // replayable choice string
  std::string trace;     // human-readable op-by-op interleaving
};

struct Options {
  // Preemptions allowed per execution (switching away from a still-enabled
  // thread); cooperative switches are free. The classic observation that
  // most concurrency bugs need very few preemptions is what makes bounded
  // search useful — raise it to widen coverage at exponential cost.
  int preemption_bound = 4;
  long max_executions = 2'000'000;
  long max_steps = 20'000;   // per execution; exceeding => truncated path
  long time_budget_ms = 0;   // 0 = unbounded; smoke runs set it
  bool collect_trace = true;
};

struct Result {
  bool found_violation = false;
  Violation violation;
  // True when the DFS frontier was exhausted with no violation: every
  // interleaving within (preemption bound, step bound) was checked.
  bool complete = false;
  long executions = 0;
  long sleep_pruned = 0;   // branches cut by sleep sets
  long truncated = 0;      // executions that hit max_steps
  bool hit_execution_cap = false;
  bool hit_time_budget = false;
  std::string summary() const;
};

class Scheduler;

// The only API a harness body sees besides mc::Atomic / mc::Var.
class Context {
 public:
  explicit Context(Scheduler* s) : s_(s) {}
  // Starts a new model thread running `fn`; returns its id. The child's
  // clock inherits the parent's (spawn is a happens-before edge).
  int spawn(std::function<void()> fn);
  // Blocks until thread `tid` finished; joins its clock (happens-before).
  void join(int tid);
  // Harness invariant. Failure records a violation with the current
  // schedule + trace and unwinds the execution.
  void check(bool cond, const std::string& msg);

 private:
  Scheduler* s_;
};

using Harness = std::function<void(Context&)>;

// Explores all interleavings of `harness` within bounds.
Result explore(const Harness& harness, const Options& options = {});

// Re-runs exactly one execution following `schedule` (a Violation::schedule
// or any prefix-compatible choice string) and returns its outcome with a
// full trace — the replay side of "counterexamples are regression tests".
Result replay(const Harness& harness, const std::string& schedule,
              const Options& options = {});

// True while the current execution is being abandoned (violation already
// recorded elsewhere, prune, step cap). Harness spin loops whose progress
// depends on a *sibling* thread must poll this and bail out — an aborted
// partner never produces/consumes again, so the loop would otherwise spin
// forever during cleanup. Production-internal spins don't need it: their
// partners' RAII cleanup (e.g. ReadGuard unpin) still runs with real
// effects in ghost mode.
bool abandoned();

// --- internal: the instrumentation surface used by mc/atomic.h -----------

namespace detail {

Scheduler* current();

// Atomic accesses (scheduling points). `mo` is std::memory_order as int.
std::uint64_t atomicInit(const void* obj, std::uint64_t value);
void atomicDestroy(const void* obj);
std::uint64_t atomicLoad(const void* obj, int mo);
void atomicStore(const void* obj, int mo, std::uint64_t value);
// RMW: reads the newest store, applies `fn(old) -> new`, returns old.
std::uint64_t atomicRmw(const void* obj, int mo,
                        const std::function<std::uint64_t(std::uint64_t)>& fn);

// Non-atomic accesses (race-checked, not scheduling points).
void varInit(const void* obj);
void varDestroy(const void* obj);
void varRead(const void* obj);
void varWrite(const void* obj);

}  // namespace detail

}  // namespace cluert::mc
