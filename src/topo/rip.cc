#include "topo/rip.h"

#include <algorithm>

#include "common/check.h"

namespace cluert::topo {

RipNetwork::RipNetwork(Topology topo, const RipOptions& opt)
    : topo_(std::move(topo)), opt_(opt) {
  CLUERT_CHECK(opt_.infinity >= 2) << "infinity metric too small";
  CLUERT_CHECK(opt_.update_interval >= 1) << "update interval must be >= 1";
  routers_.resize(topo_.nodes);
}

void RipNetwork::killRoute(RipRoute& rt) {
  if (!rt.alive(opt_.infinity)) return;
  rt.metric = opt_.infinity;
  rt.expire_tick = -1;
  rt.gc_tick = tick_ + opt_.gc_ticks;
  rt.changed = true;
}

void RipNetwork::originate(RouterId r, const Prefix4& p) {
  CLUERT_CHECK(r < routers_.size()) << "originate: router out of range";
  Router& rtr = routers_[r];
  rtr.originated[p] = true;
  RipRoute& rt = rtr.routes[p];
  rt.prefix = p;
  rt.next_hop = r;
  rt.metric = 0;
  rt.expire_tick = -1;  // originated routes never time out
  rt.gc_tick = -1;
  rt.changed = true;
}

void RipNetwork::withdraw(RouterId r, const Prefix4& p) {
  CLUERT_CHECK(r < routers_.size()) << "withdraw: router out of range";
  Router& rtr = routers_[r];
  rtr.originated.erase(p);
  auto it = rtr.routes.find(p);
  if (it == rtr.routes.end()) return;
  killRoute(it->second);
}

void RipNetwork::setLink(RouterId a, RouterId b, bool up) {
  if (!topo_.setLink(a, b, up)) return;  // not an edge or no change
  if (up) {
    // Fresh adjacency: exchange full tables next tick so the new neighbor
    // does not wait out a periodic interval. Learned views refill from that
    // exchange; until then they keep whatever staleness the outage left.
    routers_[a].want_full[b] = true;
    routers_[b].want_full[a] = true;
    return;
  }
  // Link death is detected immediately (interface down, not timer expiry):
  // both endpoints kill every route pointing across the dead link. The
  // learned clue views deliberately stay as-is — the peer still holds those
  // prefixes and will stamp them as clues if the link comes back mid-drain.
  for (const auto& [self, peer] : {std::pair{a, b}, std::pair{b, a}}) {
    for (auto& [p, rt] : routers_[self].routes) {
      if (rt.next_hop == peer) killRoute(rt);
    }
  }
}

void RipNetwork::processUpdate(const RipMessage& m) {
  Router& rtr = routers_[m.to];
  auto& view = rtr.view[m.from];
  for (const WireRoute& w : m.routes) {
    // Clue-view maintenance first: a poisoned entry means the sender still
    // holds the route (split horizon hid the metric, not the prefix); only
    // a genuinely dead advertisement evicts it from the view.
    if (w.metric >= opt_.infinity && !w.poisoned) {
      view.erase(w.prefix);
    } else {
      view[w.prefix] = true;
    }
    // Bellman-Ford with receiver-side +1, clamped at infinity. Poisoned
    // entries are unreachable-via-this-neighbor for routing purposes.
    const int m2 = std::min(w.metric + 1, opt_.infinity);
    auto it = rtr.routes.find(w.prefix);
    if (it == rtr.routes.end()) {
      if (m2 >= opt_.infinity) continue;  // don't learn dead routes
      RipRoute& rt = rtr.routes[w.prefix];
      rt.prefix = w.prefix;
      rt.next_hop = m.from;
      rt.metric = m2;
      rt.expire_tick = tick_ + opt_.timeout_ticks;
      rt.gc_tick = -1;
      rt.changed = true;
      continue;
    }
    RipRoute& rt = it->second;
    if (rtr.originated.count(w.prefix)) continue;  // own routes win
    if (rt.next_hop == m.from) {
      // Update from the current next hop: always believed, refreshes the
      // timeout, and a metric change (including to infinity) propagates.
      if (m2 < opt_.infinity) {
        rt.expire_tick = tick_ + opt_.timeout_ticks;
        rt.gc_tick = -1;
      }
      if (rt.metric != m2) {
        rt.metric = m2;
        rt.changed = true;
        if (m2 >= opt_.infinity) {
          rt.expire_tick = -1;
          rt.gc_tick = tick_ + opt_.gc_ticks;
        }
      }
    } else if (m2 < rt.metric) {
      rt.next_hop = m.from;
      rt.metric = m2;
      rt.expire_tick = tick_ + opt_.timeout_ticks;
      rt.gc_tick = -1;
      rt.changed = true;
    }
  }
}

void RipNetwork::runTimers() {
  for (Router& rtr : routers_) {
    for (auto it = rtr.routes.begin(); it != rtr.routes.end();) {
      RipRoute& rt = it->second;
      if (rt.expire_tick >= 0 && tick_ >= rt.expire_tick) killRoute(rt);
      if (rt.gc_tick >= 0 && tick_ >= rt.gc_tick) {
        it = rtr.routes.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void RipNetwork::emitUpdates() {
  for (RouterId r = 0; r < routers_.size(); ++r) {
    Router& rtr = routers_[r];
    const bool periodic =
        static_cast<std::uint64_t>(tick_) % opt_.update_interval ==
        r % static_cast<RouterId>(opt_.update_interval);
    bool sent_any = false;
    for (const RouterId nbr : topo_.upNeighbors(r)) {
      const bool full = periodic || rtr.want_full.count(nbr);
      RipMessage msg;
      msg.from = r;
      msg.to = nbr;
      for (const auto& [p, rt] : rtr.routes) {
        if (!full && !(opt_.triggered_updates && rt.changed)) continue;
        WireRoute w;
        w.prefix = p;
        w.metric = rt.metric;
        if (opt_.split_horizon_poison && rt.next_hop == nbr) {
          // Poisoned reverse: advertise infinity back toward the next hop,
          // flagging live routes so the neighbor's clue view keeps them.
          w.poisoned = rt.alive(opt_.infinity);
          w.metric = opt_.infinity;
        }
        msg.routes.push_back(w);
      }
      if (msg.routes.empty()) continue;
      pending_.push_back(std::move(msg));
      ++messages_;
      sent_any = true;
    }
    rtr.want_full.clear();
    // Triggered/periodic routes were advertised to every live neighbor;
    // clear the flags only after the whole fan-out (not per neighbor).
    if (sent_any || periodic) {
      for (auto& [p, rt] : rtr.routes) rt.changed = false;
    }
  }
}

void RipNetwork::tick() {
  // Deliver last tick's messages (one-tick propagation delay). A message in
  // flight across a link that has since gone down is lost.
  std::vector<RipMessage> inbox;
  inbox.swap(pending_);
  for (const RipMessage& m : inbox) {
    if (!topo_.linkUp(m.from, m.to)) continue;
    processUpdate(m);
  }
  runTimers();
  emitUpdates();
  ++tick_;
}

rib::Fib<Addr4> RipNetwork::fibOf(RouterId r) const {
  CLUERT_CHECK(r < routers_.size()) << "fibOf: router out of range";
  std::vector<rib::Fib<Addr4>::EntryT> entries;
  for (const auto& [p, rt] : routers_[r].routes) {
    if (!rt.alive(opt_.infinity)) continue;
    entries.push_back(rib::Fib<Addr4>::EntryT{p, rt.next_hop});
  }
  return rib::Fib<Addr4>(std::move(entries));
}

rib::Fib<Addr4> RipNetwork::clueViewOf(RouterId r, RouterId nbr) const {
  CLUERT_CHECK(r < routers_.size()) << "clueViewOf: router out of range";
  std::vector<rib::Fib<Addr4>::EntryT> entries;
  const auto& views = routers_[r].view;
  auto it = views.find(nbr);
  if (it != views.end()) {
    for (const auto& [p, _] : it->second) {
      entries.push_back(rib::Fib<Addr4>::EntryT{p, nbr});
    }
  }
  return rib::Fib<Addr4>(std::move(entries));
}

std::optional<int> RipNetwork::expectedMetric(RouterId r,
                                              const Prefix4& p) const {
  const auto dist = topo_.distancesFrom(r);
  int best = Topology::kUnreachable;
  for (RouterId o = 0; o < routers_.size(); ++o) {
    if (!routers_[o].originated.count(p)) continue;
    best = std::min(best, dist[o]);
  }
  if (best >= std::min(Topology::kUnreachable, opt_.infinity)) {
    return std::nullopt;
  }
  return best;
}

bool RipNetwork::converged() const {
  for (RouterId r = 0; r < routers_.size(); ++r) {
    const auto dist = topo_.distancesFrom(r);
    // Every live route must be a shortest path to some current originator.
    for (const auto& [p, rt] : routers_[r].routes) {
      const auto want = expectedMetric(r, p);
      if (!rt.alive(opt_.infinity)) {
        // Dead routes awaiting GC are fine only if the prefix really is
        // gone/unreachable; otherwise we have not re-learned it yet.
        if (want.has_value()) return false;
        continue;
      }
      if (!want.has_value() || rt.metric != *want) return false;
      if (rt.next_hop == r) {
        if (!routers_[r].originated.count(p)) return false;
        continue;
      }
      // Next hop must be an up neighbor lying on a shortest path.
      if (!topo_.linkUp(r, rt.next_hop)) return false;
      const auto nh_dist = topo_.distancesFrom(rt.next_hop);
      bool on_shortest = false;
      for (RouterId o = 0; o < routers_.size(); ++o) {
        if (!routers_[o].originated.count(p)) continue;
        if (nh_dist[o] + 1 == *want) on_shortest = true;
      }
      if (!on_shortest) return false;
    }
    // No reachable prefix may be missing.
    for (RouterId o = 0; o < routers_.size(); ++o) {
      if (dist[o] == Topology::kUnreachable || dist[o] >= opt_.infinity) {
        continue;
      }
      for (const auto& [p, _] : routers_[o].originated) {
        auto it = routers_[r].routes.find(p);
        if (it == routers_[r].routes.end()) return false;
        if (!it->second.alive(opt_.infinity)) return false;
      }
    }
  }
  return true;
}

}  // namespace cluert::topo
