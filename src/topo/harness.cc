#include "topo/harness.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "common/check.h"
#include "core/clue.h"
#include "core/distributed_lookup.h"
#include "mem/access_counter.h"
#include "pipeline/pinned_resolver.h"
#include "rib/route_updater.h"
#include "rib/versioned_tables.h"
#include "sim/runner.h"

namespace cluert::topo {

namespace {

using Fib4 = rib::Fib<Addr4>;
using Match4 = trie::Match<Addr4>;

// One ingress port: router `owner`'s data plane for packets arriving from
// static neighbor `nbr`. Owns the full epoch-versioned stack; `mirror_*`
// are the control plane's view of what has been enqueued so far, diffed
// against the RIP state each tick to produce the next deltas.
struct Stack {
  RouterId owner = 0;
  RouterId nbr = 0;
  Fib4 mirror_local;
  Fib4 mirror_view;
  std::unique_ptr<rib::VersionedTables4> tables;
  std::unique_ptr<rib::RouteUpdater<Addr4>> updater;
  std::unique_ptr<pipeline::PinnedResolver<Addr4>> resolver;
};

std::string describeMatch(const std::optional<Match4>& m) {
  if (!m) return "(none)";
  return m->prefix.toString() + "->" + std::to_string(m->next_hop);
}

}  // namespace

int HarnessStats::convergencePercentile(double q) const {
  if (convergence_samples.empty()) return 0;
  std::vector<int> sorted = convergence_samples;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(pos)];
}

std::string HarnessStats::summary() const {
  std::ostringstream os;
  os << "injected=" << injected << " hops=" << forwarded_hops
     << " delivered=" << delivered << " no_route=" << no_route_drops
     << " down_link=" << down_link_drops << " ttl=" << ttl_drops
     << " strict_mismatches=" << strict_mismatches
     << " stale=" << stale_clue_hops
     << " stale_conv=" << stale_during_convergence
     << " stale_flap=" << stale_during_flap
     << " stale_withdraw=" << stale_during_withdraw
     << " safe_divergences=" << advance_stale_divergences
     << " case1=" << case1_hits << " publishes=" << publishes
     << " flaps=" << link_flaps << " rip_msgs=" << rip_messages
     << " conv_samples=" << convergence_samples.size()
     << " conv_p50=" << convergencePercentile(0.5)
     << " conv_p99=" << convergencePercentile(0.99)
     << " check=" << (check_report.ok() ? "ok" : "FAIL");
  return os.str();
}

HarnessStats runTopoScenario(const TopoScenario& s,
                             const HarnessOptions& opt) {
  CLUERT_CHECK(s.mode != lookup::ClueMode::kCommon)
      << "topology harness needs a clue mode";
  const Topology topo = s.topology();
  RipNetwork rip(topo, opt.rip);
  HarnessStats stats;

  // One stack per (router, static-edge neighbor), neighbor ids ascending.
  // Static edges, not up edges: a flap must not create or destroy epoch
  // machinery mid-run.
  std::vector<std::vector<std::unique_ptr<Stack>>> stacks(topo.nodes);
  const auto stackOf = [&](RouterId owner, RouterId nbr) -> Stack* {
    for (auto& st : stacks[owner]) {
      if (st->nbr == nbr) return st.get();
    }
    return nullptr;
  };
  for (RouterId r = 0; r < topo.nodes; ++r) {
    for (const RouterId nbr : topo.neighbors(r)) {
      auto st = std::make_unique<Stack>();
      st->owner = r;
      st->nbr = nbr;
      rib::VersionedTables4::Options vopt;
      vopt.method = s.method;
      vopt.mode = s.mode;
      vopt.validate_retired = opt.validate_publishes;
      st->tables = std::make_unique<rib::VersionedTables4>(
          st->mirror_local, st->mirror_view, vopt);
      st->updater =
          std::make_unique<rib::RouteUpdater<Addr4>>(*st->tables);
      core::CluePort<Addr4>::Options popt;
      popt.method = s.method;
      popt.mode = s.mode;
      popt.expected_clues = 1 << 8;
      popt.cache_entries = opt.cache_entries;
      st->resolver = std::make_unique<pipeline::PinnedResolver<Addr4>>(
          std::make_unique<core::CluePort<Addr4>>(popt), /*worker_id=*/0);
      st->resolver->bindVersions(st->tables.get());
      stacks[r].push_back(std::move(st));
    }
  }

  // Control plane -> data plane: diff this tick's RIP state against each
  // stack's mirrors, enqueue through the updaters, flush so the tick's
  // packets resolve against fully published tables (the harness models
  // convergence lag in the *protocol*, not in publication).
  const auto publishTick = [&] {
    for (RouterId r = 0; r < topo.nodes; ++r) {
      if (stacks[r].empty()) continue;
      const Fib4 fib = rip.fibOf(r);
      const rib::FibDelta<Addr4> local_delta =
          rib::diff(stacks[r][0]->mirror_local, fib);
      for (auto& st : stacks[r]) {
        if (!local_delta.empty()) {
          st->updater->enqueueLocal(local_delta);
          rib::applyDelta(st->mirror_local, local_delta);
        }
        const Fib4 view = rip.clueViewOf(r, st->nbr);
        const rib::FibDelta<Addr4> view_delta =
            rib::diff(st->mirror_view, view);
        if (!view_delta.empty()) {
          st->updater->enqueueNeighbor(view_delta);
          rib::applyDelta(st->mirror_view, view_delta);
        }
      }
    }
    for (auto& node : stacks) {
      for (auto& st : node) st->updater->flush();
    }
  };

  // Convergence tracking: an event makes the network dirty; the first
  // post-tick converged() observation records the transient's length. The
  // window flags attribute in-window staleness to the event kinds that
  // opened it (see HarnessStats::stale_during_flap).
  bool dirty = false;
  bool window_has_link = false;
  bool window_has_withdraw = false;
  int last_event_tick = 0;

  mem::AccessCounter acc;
  mem::AccessCounter oracle_acc;

  const auto forward = [&](const TopoPacket& pkt) {
    RouterId at = pkt.src;
    RouterId from = kNoRouter;
    core::ClueField clue = core::ClueField::none();
    int ttl = opt.packet_ttl;
    int hop = 0;
    ++stats.injected;
    for (;;) {
      // Injected packets enter through the router's first port; transit
      // packets through the port facing the hop they arrived on.
      Stack* st = from == kNoRouter
                      ? (stacks[at].empty() ? nullptr : stacks[at][0].get())
                      : stackOf(at, from);
      if (st == nullptr) {
        ++stats.no_route_drops;  // isolated router: nothing to look in
        return;
      }
      const std::array<Addr4, 1> dests{pkt.dest};
      const std::array<core::ClueField, 1> clues{clue};
      std::array<core::CluePort<Addr4>::Result, 1> results;
      st->resolver->resolve(dests, clues, results, acc,
                            [&](const rib::TableVersion<Addr4>* v) {
        CLUERT_CHECK(v != nullptr) << "resolver must be versioned";
        // Classify the carried clue against this version's neighbor view
        // (what the control plane has told us the sender holds).
        sim::Fault cls = sim::Fault::kNone;
        if (!clue.present) {
          cls = sim::Fault::kNoClue;
        } else {
          const auto view_bmp = v->neighbor_trie.lookup(pkt.dest, oracle_acc);
          if (!view_bmp || view_bmp->prefix.length() != clue.length) {
            cls = sim::Fault::kStale;
            ++stats.stale_clue_hops;
            if (dirty) {
              ++stats.stale_during_convergence;
              if (window_has_link) ++stats.stale_during_flap;
              if (window_has_withdraw) ++stats.stale_during_withdraw;
            }
          }
        }
        const auto expected =
            sim::detail::bruteBmp<Addr4>(v->local.entries(), pkt.dest);
        const bool agree = expected == results[0].match;
        if (agree) return;
        if (sim::oracleStrict(cls, s.mode)) {
          ++stats.strict_mismatches;
          if (stats.first_mismatch.empty()) {
            std::ostringstream os;
            os << "router " << at << " port<-"
               << (from == kNoRouter ? std::string("inject")
                                     : std::to_string(from))
               << " tick " << rip.now() << " dest " << pkt.dest.toString()
               << " fault " << sim::faultName(cls) << ": expected "
               << describeMatch(expected) << " got "
               << describeMatch(results[0].match);
            stats.first_mismatch = os.str();
          }
        } else {
          ++stats.advance_stale_divergences;  // classified, safe
        }
      });
      const std::size_t bucket = std::min<std::size_t>(
          static_cast<std::size_t>(hop), HarnessStats::kMaxHopBuckets - 1);
      ++stats.lookups_by_hop[bucket];
      if (results[0].outcome == obs::Outcome::kCase1) {
        ++stats.case1_hits;
        ++stats.case1_by_hop[bucket];
      }
      if (!results[0].match) {
        ++stats.no_route_drops;
        return;
      }
      const RouterId nh = results[0].match->next_hop;
      if (nh == at) {
        ++stats.delivered;  // originated here
        return;
      }
      if (!topo.hasLink(at, nh)) {
        // A FIB can only ever point at a real adjacency; anything else is
        // corrupt state, not a transient.
        ++stats.strict_mismatches;
        if (stats.first_mismatch.empty()) {
          stats.first_mismatch = "router " + std::to_string(at) +
                                 " resolved non-adjacent next hop " +
                                 std::to_string(nh);
        }
        return;
      }
      if (!topo.linkUp(at, nh)) {
        ++stats.down_link_drops;  // transient: FIB not yet reconverged
        return;
      }
      if (--ttl <= 0) {
        ++stats.ttl_drops;  // routing loop during a transient
        return;
      }
      // Re-stamp the clue with this router's matched BMP (§3.2: each hop
      // sends its own best match), then hand off.
      const int len = results[0].match->prefix.length();
      clue = len > 0 ? core::ClueField::of(len) : core::ClueField::none();
      from = at;
      at = nh;
      ++hop;
      ++stats.forwarded_hops;
    }
  };

  // Main loop. Event/packet cursors ride the sorted timelines.
  std::size_t ei = 0;
  std::size_t pi = 0;
  for (int t = 0; t < s.ticks; ++t) {
    if (t == 0) {
      for (const TopoOriginate& o : s.originate) rip.originate(o.router, o.prefix);
      if (!s.originate.empty()) {
        dirty = true;
        last_event_tick = 0;
      }
    }
    for (; ei < s.events.size() && s.events[ei].tick <= t; ++ei) {
      const TopoEvent& e = s.events[ei];
      switch (e.kind) {
        case TopoEventKind::kLinkDown:
          rip.setLink(e.a, e.b, false);
          ++stats.link_flaps;
          window_has_link = true;
          break;
        case TopoEventKind::kLinkUp:
          rip.setLink(e.a, e.b, true);
          window_has_link = true;
          break;
        case TopoEventKind::kAdvertise:
          rip.originate(e.a, e.prefix);
          break;
        case TopoEventKind::kWithdraw:
          rip.withdraw(e.a, e.prefix);
          window_has_withdraw = true;
          break;
      }
      dirty = true;
      last_event_tick = t;
    }
    rip.tick();
    publishTick();
    if (dirty) {
      if (rip.converged()) {
        stats.convergence_samples.push_back(rip.now() - last_event_tick);
        dirty = false;
        window_has_link = false;
        window_has_withdraw = false;
      } else {
        ++stats.unconverged_ticks;
      }
    }
    for (; pi < s.packets.size() && s.packets[pi].tick <= t; ++pi) {
      for (std::uint32_t k = 0; k < s.packets[pi].count; ++k) {
        forward(s.packets[pi]);
      }
    }
  }

  for (auto& node : stacks) {
    for (auto& st : node) {
      st->updater->stop();
      stats.publishes += st->tables->swaps();
      stats.version_changes += st->resolver->versionChanges();
      if (opt.validate_publishes) {
        stats.check_report.merge(rib::validateVersion(st->tables->liveVersion()));
      }
    }
  }
  stats.rip_messages = rip.messagesSent();
  return stats;
}

}  // namespace cluert::topo
