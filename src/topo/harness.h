// The multi-router topology harness (DESIGN.md §12): replays one
// TopoScenario with a full versioned data plane per router — every (router,
// static-edge neighbor) port owns a rib::VersionedTables +
// pipeline::PinnedResolver stack, the RIP control plane's per-tick FIB and
// clue-view movements become FibDeltas fed through rib::RouteUpdater, and
// packets hop router to router carrying the clue the previous hop stamped.
//
// The oracle runs per hop, inside the resolver's under_guard while the pin
// is held (the same rule the netio datapath follows — an unpinned check
// could race a swap):
//   * brute-force BMP over the pinned version's local table must agree with
//     the port's answer whenever the fault matrix says strict;
//   * the carried clue is classified against the pinned version's neighbor
//     view: absent -> kNoClue, matching BMP -> kNone, anything else ->
//     kStale (the view lags the sender by the control plane's message
//     delay, so convergence windows produce genuine stale clues);
//   * Advance-mode stale divergences are counted, never fatal —
//     misrouted-but-safe, exactly the §3.1.2 robustness contract — while
//     Simple mode is held strict under every clue.
// check/ validators run on every retired publish (validate_retired) and on
// every live version at the end of the run.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "check/report.h"
#include "topo/rip.h"
#include "topo/scenario.h"

namespace cluert::topo {

struct HarnessOptions {
  // Run the full check/ validation suite on every retired publish and on
  // each final live version. Expensive; tests keep it on, bench turns it
  // off for the big packet counts.
  bool validate_publishes = true;
  std::size_t cache_entries = 64;  // per-port §3.5 clue cache
  int packet_ttl = 64;
  RipOptions rip;
};

struct HarnessStats {
  static constexpr std::size_t kMaxHopBuckets = 16;  // last bucket = 15+

  std::uint64_t injected = 0;
  std::uint64_t forwarded_hops = 0;  // successful hop transitions
  std::uint64_t delivered = 0;
  std::uint64_t no_route_drops = 0;
  std::uint64_t down_link_drops = 0;  // FIB pointed across a dead link
  std::uint64_t ttl_drops = 0;

  std::uint64_t strict_mismatches = 0;  // must be 0 for ok()
  std::uint64_t stale_clue_hops = 0;
  std::uint64_t stale_during_convergence = 0;
  // Window attribution: staleness inside a convergence window opened (or
  // extended) by a link event / a withdraw. A window can carry both flags.
  // These are what the corpus-hunt predicates key on — they tie a repro's
  // staleness to the transient kind it claims to pin down, so the shrinker
  // cannot reduce away the flap or the withdraw.
  std::uint64_t stale_during_flap = 0;
  std::uint64_t stale_during_withdraw = 0;
  std::uint64_t advance_stale_divergences = 0;  // misrouted-but-safe
  std::uint64_t case1_hits = 0;
  std::array<std::uint64_t, kMaxHopBuckets> lookups_by_hop{};
  std::array<std::uint64_t, kMaxHopBuckets> case1_by_hop{};

  std::uint64_t publishes = 0;
  std::uint64_t version_changes = 0;
  std::uint64_t rip_messages = 0;
  std::uint64_t link_flaps = 0;  // link-down events applied
  std::uint64_t unconverged_ticks = 0;
  std::vector<int> convergence_samples;  // ticks from event to converged

  check::Report check_report;
  std::string first_mismatch;  // human-readable detail of the first failure

  bool ok() const { return strict_mismatches == 0 && check_report.ok(); }
  // Nearest-rank percentile over convergence_samples (q in [0,1]); 0 when
  // no samples were recorded.
  int convergencePercentile(double q) const;
  std::string summary() const;
};

// Replays the scenario start to finish. Deterministic: same scenario, same
// stats (modulo latency counters the stats deliberately exclude).
HarnessStats runTopoScenario(const TopoScenario& s,
                             const HarnessOptions& opt = {});

}  // namespace cluert::topo
