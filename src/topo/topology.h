// Deterministic multi-router topologies for the topology harness
// (DESIGN.md §12). A Topology is a flat undirected graph over router ids
// [0, nodes) with per-link up/down state — the substrate the RIP-style
// control plane (topo/rip.h) and the versioned data plane (topo/harness.h)
// both run over. Builders are pure functions of (shape, nodes, seed), so a
// scenario file that names a topology reproduces it bit-for-bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace cluert::topo {

struct Link {
  RouterId a = 0;  // canonical: a < b
  RouterId b = 0;
  bool up = true;
};

enum class Shape : std::uint8_t { kLine, kRing, kStar, kFatTree, kRandom };
inline constexpr std::size_t kShapeCount = 5;

std::string_view shapeName(Shape s);
std::optional<Shape> shapeFromName(std::string_view name);

struct Topology {
  std::size_t nodes = 0;
  std::vector<Link> links;  // canonical order: (a, b) ascending, a < b

  // Index into links, or -1 when the (unordered) pair is not an edge.
  int linkIndex(RouterId x, RouterId y) const;
  bool hasLink(RouterId x, RouterId y) const { return linkIndex(x, y) >= 0; }
  bool linkUp(RouterId x, RouterId y) const;
  // Flips one link; returns false when the pair is not an edge or the state
  // did not change (callers use that to skip redundant control-plane work).
  bool setLink(RouterId x, RouterId y, bool up);

  // Neighbors by edge existence (ignoring up/down), ascending. The data
  // plane keys one port stack per static edge, so flaps never create or
  // destroy stacks.
  std::vector<RouterId> neighbors(RouterId r) const;
  std::vector<RouterId> upNeighbors(RouterId r) const;

  // BFS hop distances from `r` over up links; kUnreachable where cut off.
  static constexpr int kUnreachable = 1 << 20;
  std::vector<int> distancesFrom(RouterId r) const;
  bool connected() const;  // over up links
};

// Builds the named shape over `nodes` routers. `seed` matters only for
// kRandom (an AS-graph-ish connected graph: spanning tree with attachment
// biased toward low ids, plus extra shortcut edges). Shapes degrade
// gracefully when `nodes` is small: a 2-node anything is a line, a fat-tree
// below 6 nodes falls back to a star.
Topology buildTopology(Shape shape, std::size_t nodes, std::uint64_t seed);

}  // namespace cluert::topo
