#include "topo/scenario.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/random.h"
#include "sim/corpus.h"

namespace cluert::topo {

namespace {

using sim::detail::fields;
using sim::detail::LineReader;
using sim::detail::parseU64;

constexpr std::size_t kMaxNodes = 64;
constexpr int kMaxTicks = 1 << 20;
constexpr std::uint32_t kMaxBurst = 1 << 16;

std::optional<lookup::Method> methodFromName(std::string_view name) {
  for (const lookup::Method m : lookup::kExtendedMethods) {
    if (lookup::methodName(m) == name) return m;
  }
  return std::nullopt;
}

// Keeps timelines canonical: stable sort by tick only, preserving the
// written order of same-tick lines so parse-serialize is a byte fixpoint.
void sortByTick(TopoScenario& s) {
  std::stable_sort(
      s.events.begin(), s.events.end(),
      [](const TopoEvent& l, const TopoEvent& r) { return l.tick < r.tick; });
  std::stable_sort(s.packets.begin(), s.packets.end(),
                   [](const TopoPacket& l, const TopoPacket& r) {
                     return l.tick < r.tick;
                   });
}

}  // namespace

std::string_view topoEventName(TopoEventKind k) {
  switch (k) {
    case TopoEventKind::kLinkDown:
      return "link-down";
    case TopoEventKind::kLinkUp:
      return "link-up";
    case TopoEventKind::kAdvertise:
      return "advertise";
    case TopoEventKind::kWithdraw:
      return "withdraw";
  }
  return "?";
}

std::optional<TopoEventKind> topoEventFromName(std::string_view name) {
  for (const TopoEventKind k :
       {TopoEventKind::kLinkDown, TopoEventKind::kLinkUp,
        TopoEventKind::kAdvertise, TopoEventKind::kWithdraw}) {
    if (topoEventName(k) == name) return k;
  }
  return std::nullopt;
}

std::string serializeTopoScenario(const TopoScenario& s) {
  std::ostringstream os;
  os << "cluert-topo v1 ipv4\n";
  os << "seed " << s.seed << '\n';
  os << "topology " << shapeName(s.shape) << ' ' << s.nodes << '\n';
  os << "mode "
     << (s.mode == lookup::ClueMode::kSimple ? "simple" : "advance") << '\n';
  os << "method " << lookup::methodName(s.method) << '\n';
  os << "ticks " << s.ticks << '\n';
  os << "originate " << s.originate.size() << '\n';
  for (const TopoOriginate& o : s.originate) {
    os << o.router << ' ' << o.prefix.toString() << '\n';
  }
  os << "events " << s.events.size() << '\n';
  for (const TopoEvent& e : s.events) {
    os << e.tick << ' ' << topoEventName(e.kind) << ' ' << e.a << ' ';
    if (e.kind == TopoEventKind::kLinkDown ||
        e.kind == TopoEventKind::kLinkUp) {
      os << e.b << '\n';
    } else {
      os << e.prefix.toString() << '\n';
    }
  }
  os << "packets " << s.packets.size() << '\n';
  for (const TopoPacket& p : s.packets) {
    os << p.tick << ' ' << p.src << ' ' << p.dest.toString() << ' ' << p.count
       << '\n';
  }
  return os.str();
}

std::optional<TopoScenario> parseTopoScenario(std::string_view text) {
  LineReader in(text);

  const auto header = in.next();
  if (!header) return std::nullopt;
  {
    const auto f = fields(*header);
    if (f.size() != 3 || f[0] != "cluert-topo" || f[1] != "v1" ||
        f[2] != "ipv4") {
      return std::nullopt;
    }
  }

  TopoScenario s;
  const auto keyed = [&](std::string_view key, std::size_t nfields)
      -> std::optional<std::vector<std::string_view>> {
    const auto line = in.next();
    if (!line) return std::nullopt;
    const auto f = fields(*line);
    if (f.size() != nfields || f[0] != key) return std::nullopt;
    return f;
  };

  {
    const auto f = keyed("seed", 2);
    if (!f) return std::nullopt;
    const auto seed = parseU64((*f)[1]);
    if (!seed) return std::nullopt;
    s.seed = *seed;
  }
  {
    const auto f = keyed("topology", 3);
    if (!f) return std::nullopt;
    const auto shape = shapeFromName((*f)[1]);
    const auto nodes = parseU64((*f)[2]);
    if (!shape || !nodes || *nodes < 2 || *nodes > kMaxNodes) {
      return std::nullopt;
    }
    s.shape = *shape;
    s.nodes = static_cast<std::size_t>(*nodes);
  }
  {
    const auto f = keyed("mode", 2);
    if (!f) return std::nullopt;
    if ((*f)[1] == "simple") {
      s.mode = lookup::ClueMode::kSimple;
    } else if ((*f)[1] == "advance") {
      s.mode = lookup::ClueMode::kAdvance;
    } else {
      return std::nullopt;
    }
  }
  {
    const auto f = keyed("method", 2);
    if (!f) return std::nullopt;
    const auto m = methodFromName((*f)[1]);
    if (!m) return std::nullopt;
    s.method = *m;
  }
  {
    const auto f = keyed("ticks", 2);
    if (!f) return std::nullopt;
    const auto t = parseU64((*f)[1]);
    if (!t || *t > kMaxTicks) return std::nullopt;
    s.ticks = static_cast<int>(*t);
  }

  const auto count = [&](std::string_view key) -> std::optional<std::size_t> {
    const auto f = keyed(key, 2);
    if (!f) return std::nullopt;
    const auto n = parseU64((*f)[1]);
    if (!n || *n > (1u << 20)) return std::nullopt;
    return static_cast<std::size_t>(*n);
  };
  const auto router = [&](std::string_view tok) -> std::optional<RouterId> {
    const auto r = parseU64(tok);
    if (!r || *r >= s.nodes) return std::nullopt;
    return static_cast<RouterId>(*r);
  };
  const auto tickOf = [&](std::string_view tok) -> std::optional<int> {
    const auto t = parseU64(tok);
    if (!t || *t > kMaxTicks) return std::nullopt;
    return static_cast<int>(*t);
  };

  const auto n_orig = count("originate");
  if (!n_orig) return std::nullopt;
  for (std::size_t i = 0; i < *n_orig; ++i) {
    const auto line = in.next();
    if (!line) return std::nullopt;
    const auto f = fields(*line);
    if (f.size() != 2) return std::nullopt;
    const auto r = router(f[0]);
    const auto p = Prefix4::parse(f[1]);
    if (!r || !p) return std::nullopt;
    s.originate.push_back(TopoOriginate{*r, *p});
  }

  const auto n_events = count("events");
  if (!n_events) return std::nullopt;
  for (std::size_t i = 0; i < *n_events; ++i) {
    const auto line = in.next();
    if (!line) return std::nullopt;
    const auto f = fields(*line);
    if (f.size() != 4) return std::nullopt;
    TopoEvent e;
    const auto t = tickOf(f[0]);
    const auto kind = topoEventFromName(f[1]);
    const auto a = router(f[2]);
    if (!t || !kind || !a) return std::nullopt;
    e.tick = *t;
    e.kind = *kind;
    e.a = *a;
    if (*kind == TopoEventKind::kLinkDown || *kind == TopoEventKind::kLinkUp) {
      const auto b = router(f[3]);
      if (!b) return std::nullopt;
      e.b = *b;
    } else {
      const auto p = Prefix4::parse(f[3]);
      if (!p) return std::nullopt;
      e.prefix = *p;
    }
    s.events.push_back(e);
  }

  const auto n_packets = count("packets");
  if (!n_packets) return std::nullopt;
  for (std::size_t i = 0; i < *n_packets; ++i) {
    const auto line = in.next();
    if (!line) return std::nullopt;
    const auto f = fields(*line);
    if (f.size() != 4) return std::nullopt;
    const auto t = tickOf(f[0]);
    const auto src = router(f[1]);
    const auto dest = Addr4::parse(f[2]);
    const auto n = parseU64(f[3]);
    if (!t || !src || !dest || !n || *n == 0 || *n > kMaxBurst) {
      return std::nullopt;
    }
    s.packets.push_back(
        TopoPacket{*t, *src, *dest, static_cast<std::uint32_t>(*n)});
  }
  if (in.next().has_value()) return std::nullopt;  // trailing garbage
  sortByTick(s);
  return s;
}

TopoScenario generateTopoScenario(std::uint64_t seed) {
  Rng rng(Rng::splitMix64(seed) ^ 0x70905ce11a12ULL);
  TopoScenario s;
  s.seed = seed;
  s.nodes = 3 + rng.index(6);  // 3..8
  for (;;) {
    s.shape = static_cast<Shape>(rng.index(kShapeCount));
    if (s.shape != Shape::kFatTree || s.nodes >= 6) break;
  }
  s.mode = rng.chance(0.5) ? lookup::ClueMode::kAdvance
                           : lookup::ClueMode::kSimple;
  s.method = lookup::kExtendedMethods[rng.index(lookup::kMethodCount)];
  s.ticks = 80 + static_cast<int>(rng.index(120));

  // Per-router address block 10.<r+1>.0.0/16 plus a few narrower prefixes
  // inside it — neighboring tables overlap in structure the way the
  // paper's neighborhood-similarity argument wants.
  for (RouterId r = 0; r < s.nodes; ++r) {
    const std::uint32_t base = (10u << 24) | ((r + 1u) << 16);
    s.originate.push_back(TopoOriginate{r, Prefix4(Addr4(base), 16)});
    const std::size_t subs = rng.index(3);
    for (std::size_t k = 0; k < subs; ++k) {
      const int len = 18 + static_cast<int>(rng.index(9));  // /18../26
      const std::uint32_t sub =
          base | (static_cast<std::uint32_t>(rng.u64()) & 0x0000ffffu);
      s.originate.push_back(TopoOriginate{r, Prefix4(Addr4(sub), len)});
    }
  }

  const Topology topo = s.topology();
  const auto randomLink = [&]() -> const Link& {
    return topo.links[rng.index(topo.links.size())];
  };

  // Link flaps: down now, back up a few ticks later (sometimes never —
  // the run ends with the link dark).
  const std::size_t flaps = 1 + rng.index(4);
  for (std::size_t k = 0; k < flaps; ++k) {
    const Link& l = randomLink();
    const int t0 = static_cast<int>(rng.index(
        static_cast<std::size_t>(std::max(1, s.ticks - 20))));
    s.events.push_back(
        TopoEvent{t0, TopoEventKind::kLinkDown, l.a, l.b, Prefix4()});
    if (rng.chance(0.8)) {
      const int t1 = t0 + 4 + static_cast<int>(rng.index(24));
      s.events.push_back(
          TopoEvent{std::min(t1, s.ticks - 1), TopoEventKind::kLinkUp, l.a,
                    l.b, Prefix4()});
    }
  }

  // Advertise/withdraw churn on fresh prefixes.
  const std::size_t churn = rng.index(3);
  for (std::size_t k = 0; k < churn; ++k) {
    const RouterId r = static_cast<RouterId>(rng.index(s.nodes));
    const std::uint32_t base =
        (10u << 24) | ((r + 1u) << 16) | (0xc000u + (k << 8));
    const Prefix4 p(Addr4(base), 24);
    const int t0 = static_cast<int>(
        rng.index(static_cast<std::size_t>(std::max(1, s.ticks - 30))));
    s.events.push_back(
        TopoEvent{t0, TopoEventKind::kAdvertise, r, 0, p});
    if (rng.chance(0.7)) {
      const int t1 = t0 + 2 + static_cast<int>(rng.index(20));
      s.events.push_back(TopoEvent{std::min(t1, s.ticks - 1),
                                   TopoEventKind::kWithdraw, r, 0, p});
    }
  }

  // Packet bursts, mostly into originated space (deeper than the prefix so
  // BMP has work to do), occasionally anywhere.
  const std::size_t bursts = 20 + rng.index(60);
  for (std::size_t k = 0; k < bursts; ++k) {
    TopoPacket p;
    p.tick = static_cast<int>(rng.index(static_cast<std::size_t>(s.ticks)));
    p.src = static_cast<RouterId>(rng.index(s.nodes));
    if (rng.chance(0.9)) {
      const TopoOriginate& o = s.originate[rng.index(s.originate.size())];
      const std::uint32_t lo_bits =
          Addr4::kBits == o.prefix.length()
              ? 0u
              : static_cast<std::uint32_t>(rng.u64()) >> o.prefix.length();
      p.dest = Addr4(o.prefix.addr().value() | lo_bits);
    } else {
      p.dest = Addr4(static_cast<std::uint32_t>(rng.u64()));
    }
    p.count = 1 + static_cast<std::uint32_t>(rng.index(8));
    s.packets.push_back(p);
  }
  sortByTick(s);
  return s;
}

TopoScenario shrinkTopoScenario(TopoScenario failing,
                                const TopoFailPredicate& fails,
                                const sim::ShrinkOptions& opt,
                                sim::ShrinkStats* stats_out) {
  sim::ShrinkStats stats;
  for (std::size_t round = 0; round < opt.max_rounds; ++round) {
    stats.rounds = round + 1;
    bool progress = false;

    progress |= sim::detail::chunkShrink(
        failing, fails,
        [](TopoScenario& s) -> auto& { return s.packets; }, stats, opt);
    progress |= sim::detail::chunkShrink(
        failing, fails,
        [](TopoScenario& s) -> auto& { return s.events; }, stats, opt);
    progress |= sim::detail::chunkShrink(
        failing, fails,
        [](TopoScenario& s) -> auto& { return s.originate; }, stats, opt);

    // Collapse burst counts and pull timelines toward tick 0.
    for (std::size_t i = 0; i < failing.packets.size(); ++i) {
      progress |= sim::detail::tryMutation(
          failing, fails,
          [i](TopoScenario& s) {
            if (s.packets[i].count == 1) return false;
            s.packets[i].count = 1;
            return true;
          },
          stats, opt);
      for (int attempt = 0; attempt < 2; ++attempt) {
        progress |= sim::detail::tryMutation(
            failing, fails,
            [i, attempt](TopoScenario& s) {
              int& t = s.packets[i].tick;
              const int target = attempt == 0 ? 0 : t / 2;
              if (t == target) return false;
              t = target;
              sortByTick(s);
              return true;
            },
            stats, opt);
      }
      // Zero trailing destination bits for readability.
      for (const int keep : {8, 16, 24}) {
        progress |= sim::detail::tryMutation(
            failing, fails,
            [i, keep](TopoScenario& s) {
              const Addr4 cut = Prefix4(s.packets[i].dest, keep).addr();
              if (cut == s.packets[i].dest) return false;
              s.packets[i].dest = cut;
              return true;
            },
            stats, opt);
      }
    }
    for (std::size_t i = 0; i < failing.events.size(); ++i) {
      for (int attempt = 0; attempt < 2; ++attempt) {
        progress |= sim::detail::tryMutation(
            failing, fails,
            [i, attempt](TopoScenario& s) {
              int& t = s.events[i].tick;
              const int target = attempt == 0 ? 0 : t / 2;
              if (t == target) return false;
              t = target;
              sortByTick(s);
              return true;
            },
            stats, opt);
      }
    }

    // Trim the run to just past the last scheduled activity.
    progress |= sim::detail::tryMutation(
        failing, fails,
        [](TopoScenario& s) {
          int last = 0;
          for (const auto& e : s.events) last = std::max(last, e.tick);
          for (const auto& p : s.packets) last = std::max(last, p.tick);
          const int target = last + 4;
          if (s.ticks <= target) return false;
          s.ticks = target;
          return true;
        },
        stats, opt);

    if (!progress || stats.evals >= opt.max_evals) break;
  }
  if (stats_out != nullptr) *stats_out = stats;
  return failing;
}

}  // namespace cluert::topo
