#include "topo/topology.h"

#include <algorithm>
#include <deque>

#include "common/check.h"
#include "common/random.h"

namespace cluert::topo {

std::string_view shapeName(Shape s) {
  switch (s) {
    case Shape::kLine:
      return "line";
    case Shape::kRing:
      return "ring";
    case Shape::kStar:
      return "star";
    case Shape::kFatTree:
      return "fattree";
    case Shape::kRandom:
      return "random";
  }
  return "?";
}

std::optional<Shape> shapeFromName(std::string_view name) {
  for (std::size_t i = 0; i < kShapeCount; ++i) {
    const Shape s = static_cast<Shape>(i);
    if (shapeName(s) == name) return s;
  }
  return std::nullopt;
}

int Topology::linkIndex(RouterId x, RouterId y) const {
  if (x > y) std::swap(x, y);
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (links[i].a == x && links[i].b == y) return static_cast<int>(i);
  }
  return -1;
}

bool Topology::linkUp(RouterId x, RouterId y) const {
  const int i = linkIndex(x, y);
  return i >= 0 && links[static_cast<std::size_t>(i)].up;
}

bool Topology::setLink(RouterId x, RouterId y, bool up) {
  const int i = linkIndex(x, y);
  if (i < 0) return false;
  Link& l = links[static_cast<std::size_t>(i)];
  if (l.up == up) return false;
  l.up = up;
  return true;
}

std::vector<RouterId> Topology::neighbors(RouterId r) const {
  std::vector<RouterId> out;
  for (const Link& l : links) {
    if (l.a == r) out.push_back(l.b);
    if (l.b == r) out.push_back(l.a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RouterId> Topology::upNeighbors(RouterId r) const {
  std::vector<RouterId> out;
  for (const Link& l : links) {
    if (!l.up) continue;
    if (l.a == r) out.push_back(l.b);
    if (l.b == r) out.push_back(l.a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> Topology::distancesFrom(RouterId r) const {
  std::vector<int> dist(nodes, kUnreachable);
  CLUERT_CHECK(r < nodes) << "router id out of range";
  dist[r] = 0;
  std::deque<RouterId> frontier{r};
  while (!frontier.empty()) {
    const RouterId v = frontier.front();
    frontier.pop_front();
    for (const RouterId n : upNeighbors(v)) {
      if (dist[n] != kUnreachable) continue;
      dist[n] = dist[v] + 1;
      frontier.push_back(n);
    }
  }
  return dist;
}

bool Topology::connected() const {
  if (nodes == 0) return true;
  const auto dist = distancesFrom(0);
  return std::all_of(dist.begin(), dist.end(),
                     [](int d) { return d != kUnreachable; });
}

namespace {

void addEdge(Topology& t, RouterId x, RouterId y) {
  if (x == y) return;
  if (x > y) std::swap(x, y);
  if (t.linkIndex(x, y) >= 0) return;
  t.links.push_back(Link{x, y, true});
}

void canonicalize(Topology& t) {
  std::sort(t.links.begin(), t.links.end(), [](const Link& l, const Link& r) {
    return l.a != r.a ? l.a < r.a : l.b < r.b;
  });
}

}  // namespace

Topology buildTopology(Shape shape, std::size_t nodes, std::uint64_t seed) {
  CLUERT_CHECK(nodes >= 2) << "topology needs at least 2 routers";
  Topology t;
  t.nodes = nodes;
  const auto id = [](std::size_t i) { return static_cast<RouterId>(i); };
  switch (shape) {
    case Shape::kLine:
      for (std::size_t i = 0; i + 1 < nodes; ++i) addEdge(t, id(i), id(i + 1));
      break;
    case Shape::kRing:
      for (std::size_t i = 0; i + 1 < nodes; ++i) addEdge(t, id(i), id(i + 1));
      if (nodes >= 3) addEdge(t, id(0), id(nodes - 1));
      break;
    case Shape::kStar:
      for (std::size_t i = 1; i < nodes; ++i) addEdge(t, id(0), id(i));
      break;
    case Shape::kFatTree: {
      // Two cores, two aggregations (each dual-homed to both cores), leaves
      // dual-homed to both aggregations — the smallest shape with the
      // multipath redundancy the name implies. Below 6 nodes there is no
      // room for two tiers; a star is the honest degenerate form.
      if (nodes < 6) return buildTopology(Shape::kStar, nodes, seed);
      addEdge(t, id(0), id(1));  // core peering link
      for (std::size_t agg = 2; agg <= 3; ++agg) {
        addEdge(t, id(0), id(agg));
        addEdge(t, id(1), id(agg));
      }
      for (std::size_t leaf = 4; leaf < nodes; ++leaf) {
        addEdge(t, id(2), id(leaf));
        addEdge(t, id(3), id(leaf));
      }
      break;
    }
    case Shape::kRandom: {
      // AS-graph-ish: every new node attaches to an existing one with a
      // bias toward low ids (min of two uniform draws ~ preferential
      // attachment), then extra shortcut edges add path diversity.
      Rng rng(Rng::splitMix64(seed) ^ 0x7090a55eedULL);
      for (std::size_t i = 1; i < nodes; ++i) {
        const std::size_t parent = std::min(rng.index(i), rng.index(i));
        addEdge(t, id(parent), id(i));
      }
      const std::size_t extras = nodes / 2;
      for (std::size_t k = 0; k < extras; ++k) {
        const std::size_t x = std::min(rng.index(nodes), rng.index(nodes));
        const std::size_t y = rng.index(nodes);
        addEdge(t, id(x), id(y));
      }
      break;
    }
  }
  canonicalize(t);
  return t;
}

}  // namespace cluert::topo
