// A RIP-style distance-vector control plane over a Topology (DESIGN.md §12,
// after the RFC 2453 subset in the ETHZ exemplar referenced by SNIPPETS.md):
// hop-count metric with a count-to-infinity bound, periodic full updates,
// triggered updates on change, split horizon with poisoned reverse, and the
// two-stage route death of timeout (metric -> infinity, route advertised
// dead) followed by garbage collection (route deleted).
//
// The whole machine is a deterministic discrete-tick simulation: messages
// sent at tick t are delivered at tick t+1 in send order, timers fire on
// tick boundaries, and every container iterates in a fixed order — the same
// scenario always produces the same FibDelta stream, which is what makes
// topology scenarios corpus-committable.
//
// Clue sub-protocol (the §3.3.2/§5.3 rider): each update entry carries a
// `poisoned` bit distinguishing "metric infinity because of split horizon —
// I still hold this route and will stamp it as a clue on traffic I send
// you" from "metric infinity because the route died". Receivers maintain a
// per-neighbor prefix view from exactly this bit; that view is the clue
// table universe the data plane builds per ingress neighbor, and its
// one-tick lag behind the sender's real table is the honest source of the
// kStale clues the fault matrix classifies during convergence windows.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ip/prefix.h"
#include "rib/fib.h"
#include "rib/fib_diff.h"
#include "topo/topology.h"

namespace cluert::topo {

using Addr4 = ip::Ip4Addr;
using Prefix4 = ip::Prefix<Addr4>;

struct PrefixLess {
  bool operator()(const Prefix4& x, const Prefix4& y) const {
    return rib::detail::prefixLess<Addr4>(x, y);
  }
};

struct RipOptions {
  int update_interval = 8;  // ticks between periodic full updates
  int timeout_ticks = 48;   // silence before a route is declared dead (6x)
  int gc_ticks = 32;        // dead-route advertisement window before delete
  int infinity = 16;        // RIP's unreachable metric (count-to-infinity cap)
  bool triggered_updates = true;
  bool split_horizon_poison = true;

  // Ticks within which any single event (flap, withdraw, origination) must
  // reconverge the whole network: metric can climb by one per 2-tick
  // exchange round up to infinity, the dead route then lingers one gc
  // window, and timer-driven expiry plus periodic-update phase add slack.
  // Property tests assert convergence against exactly this bound.
  int convergenceBound() const {
    return 2 * infinity + timeout_ticks + gc_ticks + 2 * update_interval;
  }
};

struct RipRoute {
  Prefix4 prefix;
  RouterId next_hop = kNoRouter;  // neighbor id; own id when originated
  int metric = 0;
  int expire_tick = -1;  // tick at which the route times out; <0 never
  int gc_tick = -1;      // >=0: dead (metric==infinity), delete at this tick
  bool changed = false;  // pending triggered-update flag

  bool alive(int infinity) const { return metric < infinity; }
};

// One entry of an update message. `poisoned` is the clue rider (see header
// comment): true only for split-horizon-poisoned entries of live routes.
struct WireRoute {
  Prefix4 prefix;
  int metric = 0;
  bool poisoned = false;
};

struct RipMessage {
  RouterId from = 0;
  RouterId to = 0;
  std::vector<WireRoute> routes;
};

class RipNetwork {
 public:
  RipNetwork(Topology topo, const RipOptions& opt);

  const Topology& topology() const { return topo_; }
  const RipOptions& options() const { return opt_; }
  int now() const { return tick_; }
  std::uint64_t messagesSent() const { return messages_; }

  // Control events, applied immediately (between ticks).
  void originate(RouterId r, const Prefix4& p);
  void withdraw(RouterId r, const Prefix4& p);
  void setLink(RouterId a, RouterId b, bool up);

  // One simulation tick: deliver last tick's messages, run timers, emit
  // periodic/triggered updates (delivered next tick).
  void tick();

  // The router's current forwarding table: every live route, next hop
  // encoded as the neighbor's RouterId (its own id for originated routes).
  rib::Fib<Addr4> fibOf(RouterId r) const;

  // The prefix universe router `r` believes ingress neighbor `nbr` can
  // stamp as clues — learned purely from `nbr`'s updates (poisoned entries
  // included, dead entries dropped). Next hops carry `nbr` and are unused.
  rib::Fib<Addr4> clueViewOf(RouterId r, RouterId nbr) const;

  // Shortest-path hop metric from `r` to the nearest originator of `p`
  // over up links; nullopt when unreachable or nobody originates it.
  std::optional<int> expectedMetric(RouterId r, const Prefix4& p) const;

  // True iff every router's live routes are exactly the BFS-shortest-path
  // answer: right metric, next hop on a shortest path, no routes to
  // withdrawn or unreachable prefixes, no missing routes.
  bool converged() const;

 private:
  struct Router {
    std::map<Prefix4, RipRoute, PrefixLess> routes;
    std::map<Prefix4, bool, PrefixLess> originated;
    // Per-ingress-neighbor clue view (see clueViewOf).
    std::map<RouterId, std::map<Prefix4, bool, PrefixLess>> view;
    // Send a full (non-periodic) update to these neighbors next tick —
    // set when a link to them comes up.
    std::map<RouterId, bool> want_full;
  };

  void processUpdate(const RipMessage& m);
  void runTimers();
  void emitUpdates();
  void killRoute(RipRoute& rt);

  Topology topo_;
  RipOptions opt_;
  std::vector<Router> routers_;
  std::vector<RipMessage> pending_;  // sent this tick, delivered next tick
  int tick_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace cluert::topo
