// Topology scenarios (DESIGN.md §12): the corpus-committable description of
// one multi-router run — which topology, which routers originate which
// prefixes, a timeline of control-plane events (link flaps, advertise /
// withdraw), and a timeline of packet injections. The harness
// (topo/harness.h) replays one deterministically; the shrinker reduces a
// failing one with the same ddmin machinery single-pair scenarios use.
//
// Canonical text format (shares the .scn corpus directory; the header word
// routes files to this parser via sim::scenarioFamily -> "topo4"):
//
//   cluert-topo v1 ipv4
//   seed <u64>
//   topology <shape> <nodes>
//   mode <simple|advance>
//   method <name>
//   ticks <n>
//   originate <n>     then n lines "router prefix"
//   events <n>        then n lines "tick link-down|link-up a b"
//                     or           "tick advertise|withdraw router prefix"
//   packets <n>       then n lines "tick src dest count"
//
// serialize(parse(text)) is byte-identical for canonical files; the
// CorpusReplay fixpoint test holds topo files to that.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lookup/lookup_method.h"
#include "sim/shrink.h"
#include "topo/rip.h"
#include "topo/topology.h"

namespace cluert::topo {

enum class TopoEventKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kAdvertise,
  kWithdraw,
};

std::string_view topoEventName(TopoEventKind k);
std::optional<TopoEventKind> topoEventFromName(std::string_view name);

struct TopoEvent {
  int tick = 0;
  TopoEventKind kind = TopoEventKind::kLinkDown;
  RouterId a = 0;      // link endpoint / acting router
  RouterId b = 0;      // link endpoint (link events only)
  Prefix4 prefix;      // advertise/withdraw only

  friend bool operator==(const TopoEvent&, const TopoEvent&) = default;
};

struct TopoPacket {
  int tick = 0;
  RouterId src = 0;
  Addr4 dest;
  std::uint32_t count = 1;  // identical injections this tick

  friend bool operator==(const TopoPacket&, const TopoPacket&) = default;
};

struct TopoOriginate {
  RouterId router = 0;
  Prefix4 prefix;

  friend bool operator==(const TopoOriginate&, const TopoOriginate&) = default;
};

struct TopoScenario {
  std::uint64_t seed = 0;
  Shape shape = Shape::kLine;
  std::size_t nodes = 2;
  lookup::ClueMode mode = lookup::ClueMode::kAdvance;
  lookup::Method method = lookup::Method::kPatricia;
  int ticks = 0;
  std::vector<TopoOriginate> originate;  // applied at tick 0
  std::vector<TopoEvent> events;         // sorted by tick
  std::vector<TopoPacket> packets;       // sorted by tick

  Topology topology() const { return buildTopology(shape, nodes, seed); }
};

std::string serializeTopoScenario(const TopoScenario& s);
std::optional<TopoScenario> parseTopoScenario(std::string_view text);

// Seeded generator: 3-8 routers, any shape (fat-tree only with enough
// nodes), per-router address blocks plus random sub-prefixes, link flaps
// and advertise/withdraw churn spread over the run, and packet bursts
// biased toward originated space so most lookups resolve.
TopoScenario generateTopoScenario(std::uint64_t seed);

using TopoFailPredicate = std::function<bool(const TopoScenario&)>;

// ddmin-shrinks `failing` (which must satisfy `fails`) via the generic
// sim::detail chunk/mutation passes: drop packets, events, originations;
// collapse burst counts to 1; pull ticks toward 0; truncate destination
// bits; trim the run length.
TopoScenario shrinkTopoScenario(TopoScenario failing,
                                const TopoFailPredicate& fails,
                                const sim::ShrinkOptions& opt = {},
                                sim::ShrinkStats* stats_out = nullptr);

}  // namespace cluert::topo
