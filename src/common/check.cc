#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace cluert::check_internal {

FailStream::FailStream(const char* file, int line, const char* condition) {
  stream_ << file << ':' << line << ": CLUERT_CHECK failed: " << condition;
  stream_ << ' ';
}

FailStream::~FailStream() {
  const std::string message = stream_.str();
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace cluert::check_internal
