// Deterministic pseudo-random helpers used across generators, tests and
// benchmarks. Every consumer seeds explicitly so that experiment outputs are
// reproducible run-to-run (the paper's methodology fixes the packet sample
// per router pair; we fix the PRNG stream instead).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace cluert {

// Thin wrapper around std::mt19937_64 with the handful of draw shapes the
// project needs. Not thread-safe; create one per thread / per generator.
//
// Sharing one Rng across threads is a data race (mt19937_64 mutates ~2.5 KB
// of state per draw), and seeding workers with `seed + worker_id` correlates
// the streams (nearby mt19937 seeds produce correlated output). Concurrent
// code must instead *split* the seed: Rng::forThread(seed, worker_id) mixes
// the pair through SplitMix64 so every worker gets an independent,
// deterministic stream — same (seed, id) always yields the same stream, and
// distinct ids yield statistically unrelated ones.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Deterministic per-worker stream derivation (see class comment). Used by
  // the pipeline so that a run with N workers is reproducible run-to-run.
  static Rng forThread(std::uint64_t seed, std::uint64_t worker_id) {
    return Rng(splitMix64(splitMix64(seed) ^ splitMix64(~worker_id)));
  }

  // SplitMix64 finalizer (Steele et al.): a cheap bijective mixer whose
  // outputs pass BigCrush; ideal for turning structured inputs into seeds.
  static constexpr std::uint64_t splitMix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    std::uniform_int_distribution<std::uint64_t> d(lo, hi);
    return d(engine_);
  }

  // Uniform 32-bit value (used for random IPv4 destinations).
  std::uint32_t u32() { return static_cast<std::uint32_t>(engine_()); }

  // Uniform 64-bit value.
  std::uint64_t u64() { return engine_(); }

  // True with probability p (clamped to [0,1]).
  bool chance(double p) {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(engine_) < p;
  }

  // Uniform double in [0, 1).
  double real() {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(engine_);
  }

  // Index drawn from a discrete distribution given by non-negative weights.
  // An all-zero weight vector yields index 0.
  std::size_t weighted(const std::vector<double>& weights);

  // Uniformly chosen element index of a non-empty container size.
  std::size_t index(std::size_t size) {
    return static_cast<std::size_t>(uniform(0, size - 1));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Zipf-distributed index sampler over {0, ..., n-1}: P(i) ∝ 1/(i+1)^s.
// Used to model skewed destination popularity (flows in real traffic are
// heavy-tailed, which is what makes small clue caches effective — §3.5).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = acc;
    }
    for (double& v : cdf_) v /= acc;
  }

  std::size_t sample(Rng& rng) const {
    const double x = rng.real();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace cluert
