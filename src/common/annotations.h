// Clang thread-safety annotations, spelled CLUERT_* and compiled to nothing
// on every other compiler. Conventions (DESIGN.md §10):
//
//   * Every mutex-protected field names its mutex with CLUERT_GUARDED_BY.
//   * Private helpers that assume the lock is held say CLUERT_REQUIRES.
//   * Public entry points that take the lock themselves say CLUERT_EXCLUDES
//     (catches self-deadlock at compile time).
//   * The annotations only check anything when the capability is an
//     annotated type — use cluert::sync::Mutex / MutexLock (common/mutex.h),
//     not bare std::mutex, for any new locked state.
//
// `-Wthread-safety` is folded into clang builds by the top-level
// CMakeLists, so under CLUERT_WERROR=ON a violated contract fails the
// build; tools/ci.sh gate 8 documents the degradation on non-clang hosts.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define CLUERT_TSA(x) __attribute__((x))
#else
#define CLUERT_TSA(x)  // no-op off clang
#endif

#define CLUERT_CAPABILITY(x) CLUERT_TSA(capability(x))
#define CLUERT_SCOPED_CAPABILITY CLUERT_TSA(scoped_lockable)
#define CLUERT_GUARDED_BY(x) CLUERT_TSA(guarded_by(x))
#define CLUERT_PT_GUARDED_BY(x) CLUERT_TSA(pt_guarded_by(x))
#define CLUERT_REQUIRES(...) CLUERT_TSA(requires_capability(__VA_ARGS__))
#define CLUERT_ACQUIRE(...) CLUERT_TSA(acquire_capability(__VA_ARGS__))
#define CLUERT_RELEASE(...) CLUERT_TSA(release_capability(__VA_ARGS__))
#define CLUERT_TRY_ACQUIRE(...) CLUERT_TSA(try_acquire_capability(__VA_ARGS__))
#define CLUERT_EXCLUDES(...) CLUERT_TSA(locks_excluded(__VA_ARGS__))
#define CLUERT_ASSERT_CAPABILITY(x) CLUERT_TSA(assert_capability(x))
#define CLUERT_RETURN_CAPABILITY(x) CLUERT_TSA(lock_returned(x))
#define CLUERT_NO_TSA CLUERT_TSA(no_thread_safety_analysis)
