#include "common/random.h"

namespace cluert {

std::size_t Rng::weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  std::uniform_real_distribution<double> d(0.0, total);
  double x = d(engine_);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace cluert
