// Small sample-summary helper (mean / min / max / percentiles) used by the
// benchmarks: the paper reports averages, but per-packet access counts are
// skewed (most packets are 1-access, a few case-3 searches are not), so the
// experiment reports also show the tail.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace cluert {

class Summary {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double t = 0;
    for (double v : samples_) t += v;
    return t / static_cast<double>(samples_.size());
  }

  double min() const {
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.front();
  }

  double max() const {
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.back();
  }

  // Nearest-rank percentile, p in [0, 100].
  double percentile(double p) const {
    ensureSorted();
    if (samples_.empty()) return 0.0;
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto idx = static_cast<std::size_t>(rank + 0.5);
    return samples_[std::min(idx, samples_.size() - 1)];
  }

  // Fraction of samples <= threshold.
  double fractionAtMost(double threshold) const {
    if (samples_.empty()) return 0.0;
    std::size_t n = 0;
    for (double v : samples_) {
      if (v <= threshold) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(samples_.size());
  }

 private:
  void ensureSorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace cluert
