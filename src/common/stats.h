// Small sample-summary helper (mean / min / max / percentiles) used by the
// benchmarks: the paper reports averages, but per-packet access counts are
// skewed (most packets are 1-access, a few case-3 searches are not), so the
// experiment reports also show the tail.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace cluert {

class Summary {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  // Folds another summary's samples into this one. The pipeline uses this to
  // combine per-worker summaries after join() — tail statistics (percentile,
  // stddev) do not compose from partial aggregates, so the raw samples are
  // what must merge.
  void merge(const Summary& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    if (!other.samples_.empty()) sorted_ = false;
  }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double t = 0;
    for (double v : samples_) t += v;
    return t / static_cast<double>(samples_.size());
  }

  double min() const {
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.front();
  }

  double max() const {
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.back();
  }

  // Population standard deviation (two-pass; samples are all in memory
  // anyway and the two-pass form is numerically stable).
  double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double sq = 0;
    for (double v : samples_) sq += (v - m) * (v - m);
    return std::sqrt(sq / static_cast<double>(samples_.size()));
  }

  // Percentile with linear interpolation between closest ranks, p in
  // [0, 100] (the numpy/Excel "inclusive" definition). Nearest-rank rounding
  // over-reported tails on small samples — e.g. p50 of {1, 2} is now 1.5,
  // not 2.
  double percentile(double p) const {
    ensureSorted();
    if (samples_.empty()) return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
  }

  // Fraction of samples <= threshold.
  double fractionAtMost(double threshold) const {
    if (samples_.empty()) return 0.0;
    std::size_t n = 0;
    for (double v : samples_) {
      if (v <= threshold) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(samples_.size());
  }

 private:
  void ensureSorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace cluert
