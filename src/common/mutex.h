// Annotated mutex wrappers: std::mutex carries no thread-safety-analysis
// attributes in libstdc++, so CLUERT_GUARDED_BY(bare_std_mutex) checks
// nothing (and warns under -Wthread-safety-attributes). These wrappers are
// the thinnest possible capability-typed shell — same codegen, same TSan
// visibility (the real std::mutex is inside), but clang's analysis can now
// prove every guarded field is touched under its lock.
//
// Waiting uses std::condition_variable_any over Mutex directly; the
// predicate lambda is annotated CLUERT_REQUIRES(mu) at the call sites (the
// wait internals live in system headers, whose diagnostics clang
// suppresses, while the lambda body itself still gets checked).
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace cluert::sync {

class CLUERT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CLUERT_ACQUIRE() { m_.lock(); }
  void unlock() CLUERT_RELEASE() { m_.unlock(); }
  bool try_lock() CLUERT_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

// Scoped lock_guard counterpart. Non-movable by design: a guard that can
// escape its scope defeats the static analysis.
class CLUERT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CLUERT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CLUERT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable over the annotated Mutex (BasicLockable), for the
// wait loops in RouteUpdater and Daemon. Usage:
//
//   sync::MutexLock lock(mu_);
//   cv_.wait(mu_, [this]() CLUERT_REQUIRES(mu_) { return ready_; });
//
// Note wait() takes the Mutex itself, not the MutexLock — MutexLock is
// deliberately not a Lockable.
using CondVar = std::condition_variable_any;

}  // namespace cluert::sync
