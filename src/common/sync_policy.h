// The atomics policy seam that makes the lock-free cores model-checkable.
//
// SpscRing and the epoch publication protocol (rib/epoch.h) take a `Policy`
// template parameter and spell every atomic through
// `Policy::template Atomic<T>` and every wait through `Policy::yield()` /
// `Policy::sleepUs()`. Production instantiates StdSyncPolicy — a zero-cost
// pass-through to std::atomic / std::this_thread — while the model checker
// (src/mc/) instantiates mc::ModelPolicy, whose Atomic is an instrumented
// shim that announces each access to a schedule-exploring scheduler. The
// point of the seam: the *production protocol code* is what gets checked,
// not a hand-maintained copy of it.
#pragma once

#include <atomic>
#include <chrono>
#include <thread>

namespace cluert::sync {

struct StdSyncPolicy {
  template <typename T>
  using Atomic = std::atomic<T>;

  static void yield() { std::this_thread::yield(); }

  static void sleepUs(unsigned us) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
};

}  // namespace cluert::sync
