// CLUERT_CHECK / CLUERT_DCHECK: the runtime-invariant macros every layer of
// the tree uses instead of <cassert>.
//
//   CLUERT_CHECK(cond)  — always compiled in, every build type. For
//                         control-plane preconditions and API contracts whose
//                         violation would silently corrupt routing state
//                         (the paper's correctness argument — Claim 1, the
//                         pruned-trie property, FD/Ptr consistency — depends
//                         on them holding in production, not just in debug
//                         runs).
//   CLUERT_DCHECK(cond) — compiled out under NDEBUG. For per-packet
//                         fast-path invariants where a branch per packet is
//                         real cost (the access-model hot loops).
//
// Both stream a message:
//
//   CLUERT_CHECK(slot < slots_.size()) << "slot " << slot << " of "
//                                      << slots_.size();
//
// On failure the accumulated message is written to stderr together with the
// source location and the stringified condition, then the process aborts.
// The streamed operands are evaluated only on failure (the macro expands to
// a conditional), so an expensive diagnostic costs nothing on the true path.
//
// Structural whole-container validation does NOT live here: src/check/
// builds machine-readable violation reports instead of aborting. These
// macros are for local, can't-continue contract violations.
#pragma once

#include <sstream>

namespace cluert::check_internal {

// Accumulates the failure message; its destructor (end of the full
// expression) prints and aborts. Never instantiated on the success path.
class FailStream {
 public:
  FailStream(const char* file, int line, const char* condition);
  FailStream(const FailStream&) = delete;
  FailStream& operator=(const FailStream&) = delete;
  ~FailStream();  // prints and aborts

  template <typename T>
  FailStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  // Lvalue self-reference so the macro's temporary can seed an << chain and
  // still bind to Voidify's reference parameter.
  FailStream& stream() { return *this; }

 private:
  std::ostringstream stream_;
};

// Makes the failure arm of the ternary void-typed regardless of how many <<
// operands follow. '&' binds looser than '<<', so the whole chain completes
// before Voidify swallows it.
struct Voidify {
  void operator&(FailStream&) const {}
};

}  // namespace cluert::check_internal

// Always-on invariant check with streamed diagnostics.
#define CLUERT_CHECK(condition)                                      \
  (condition) ? (void)0                                              \
              : ::cluert::check_internal::Voidify() &                \
                    ::cluert::check_internal::FailStream(            \
                        __FILE__, __LINE__, #condition)              \
                        .stream()

// Debug-only invariant check; compiled out (condition and message operands
// unevaluated, but still type-checked) when NDEBUG is defined.
#ifdef NDEBUG
#define CLUERT_DCHECK(condition) CLUERT_CHECK(true || (condition))
#else
#define CLUERT_DCHECK(condition) CLUERT_CHECK(condition)
#endif
