// Small shared vocabulary types.
#pragma once

#include <cstdint>
#include <limits>

namespace cluert {

// Identifier of a forwarding next hop (an outgoing port / neighbor router).
using NextHop = std::uint32_t;

// Sentinel: "no route".
inline constexpr NextHop kNoNextHop = std::numeric_limits<NextHop>::max();

// Identifier of a router in the simulated network.
using RouterId = std::uint32_t;

inline constexpr RouterId kNoRouter = std::numeric_limits<RouterId>::max();

// Index of a neighbor within a router's clue machinery. The per-vertex
// Claim-1 booleans of §4 ("one such Boolean bit at each vertex for each
// neighboring router") are stored as a 64-bit mask, bounding the number of
// annotated neighbors per trie.
using NeighborIndex = std::uint32_t;

inline constexpr NeighborIndex kMaxAnnotatedNeighbors = 64;

}  // namespace cluert
