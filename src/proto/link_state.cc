#include "proto/link_state.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <set>
#include "common/check.h"

namespace cluert::proto {

namespace {

// True iff the database shows the link in both directions (two-way check).
bool bidirectional(const LsaDatabase& db, RouterId a, RouterId b) {
  const Lsa* la = db.find(a);
  const Lsa* lb = db.find(b);
  if (la == nullptr || lb == nullptr) return false;
  const auto has = [](const Lsa& l, RouterId peer) {
    return std::any_of(l.links.begin(), l.links.end(),
                       [&](const auto& e) { return e.first == peer; });
  };
  return has(*la, b) && has(*lb, a);
}

}  // namespace

std::map<RouterId, RouterId> LinkStateNode::firstHops() const {
  // Dijkstra from id_ over the bidirectionally confirmed graph. Distances
  // tie-break on (cost, first-hop id) so every node computes deterministic,
  // loop-free routes.
  using Dist = std::pair<unsigned, RouterId>;  // (cost, first hop)
  std::map<RouterId, Dist> best;
  using QueueEntry = std::pair<Dist, RouterId>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  best[id_] = {0, id_};
  queue.push({{0, id_}, id_});
  while (!queue.empty()) {
    const auto [dist, at] = queue.top();
    queue.pop();
    const auto it = best.find(at);
    if (it != best.end() && dist > it->second) continue;
    const Lsa* lsa = db_.find(at);
    if (lsa == nullptr) continue;
    for (const auto& [peer, cost] : lsa->links) {
      if (!bidirectional(db_, at, peer)) continue;
      Dist candidate{dist.first + cost,
                     at == id_ ? peer : dist.second};
      const auto bit = best.find(peer);
      if (bit == best.end() || candidate < bit->second) {
        best[peer] = candidate;
        queue.push({candidate, peer});
      }
    }
  }
  std::map<RouterId, RouterId> hops;
  for (const auto& [router, dist] : best) hops[router] = dist.second;
  return hops;
}

rib::Fib4 LinkStateNode::computeFib() const {
  const auto hops = firstHops();
  std::vector<rib::Fib4::EntryT> entries;
  for (const auto& [origin, lsa] : db_.all()) {
    const auto it = hops.find(origin);
    if (it == hops.end()) continue;  // unreachable origin
    for (const ip::Prefix4& p : lsa.prefixes) {
      entries.push_back({p, it->second});
    }
  }
  return rib::Fib4(std::move(entries));
}

RouterId LinkStateSimulation::addRouter() {
  const auto id = static_cast<RouterId>(nodes_.size());
  nodes_.emplace_back(id);
  adjacency_.emplace_back();
  originated_.emplace_back();
  return id;
}

void LinkStateSimulation::link(RouterId a, RouterId b, unsigned cost) {
  CLUERT_CHECK(a < nodes_.size() && b < nodes_.size() && a != b)
      << "link " << a << " <-> " << b << " with " << nodes_.size() << " nodes";
  adjacency_[a].push_back(Adjacency{b, cost, true});
  adjacency_[b].push_back(Adjacency{a, cost, true});
}

void LinkStateSimulation::failLink(RouterId a, RouterId b) {
  for (Adjacency& adj : adjacency_[a]) {
    if (adj.peer == b) adj.up = false;
  }
  for (Adjacency& adj : adjacency_[b]) {
    if (adj.peer == a) adj.up = false;
  }
}

void LinkStateSimulation::restoreLink(RouterId a, RouterId b) {
  for (Adjacency& adj : adjacency_[a]) {
    if (adj.peer == b) adj.up = true;
  }
  for (Adjacency& adj : adjacency_[b]) {
    if (adj.peer == a) adj.up = true;
  }
}

void LinkStateSimulation::originate(RouterId r, const ip::Prefix4& prefix) {
  originated_[r].push_back(prefix);
}

std::vector<std::pair<RouterId, unsigned>> LinkStateSimulation::liveLinks(
    RouterId r) const {
  std::vector<std::pair<RouterId, unsigned>> out;
  for (const Adjacency& adj : adjacency_[r]) {
    if (adj.up) out.emplace_back(adj.peer, adj.cost);
  }
  return out;
}

std::vector<ip::Prefix4> LinkStateSimulation::prefixesOf(RouterId r) const {
  return originated_[r];
}

void LinkStateSimulation::converge() {
  ++stats_.rounds;
  // Every router re-advertises its current local state, then LSAs flood
  // until no router learns anything new. Failed links carry no messages.
  struct InFlight {
    RouterId from;
    RouterId to;
    Lsa lsa;
  };
  std::deque<InFlight> wire;
  const auto floodFrom = [&](RouterId r, const Lsa& lsa, RouterId except) {
    for (const Adjacency& adj : adjacency_[r]) {
      if (!adj.up || adj.peer == except) continue;
      wire.push_back(InFlight{r, adj.peer, lsa});
      ++stats_.messages;
    }
  };
  for (RouterId r = 0; r < nodes_.size(); ++r) {
    const Lsa lsa = nodes_[r].advertise(liveLinks(r), prefixesOf(r));
    floodFrom(r, lsa, kNoRouter);
  }
  while (!wire.empty()) {
    const InFlight m = std::move(wire.front());
    wire.pop_front();
    if (nodes_[m.to].receive(m.lsa)) {
      floodFrom(m.to, m.lsa, m.from);
    }
  }
}

}  // namespace cluert::proto
