// A small link-state interior routing protocol (OSPF-flavoured).
//
// §3.3.2 ("Pre-processing construction of the clues hash table") assumes
// the clue machinery rides on the routing computation: "the routers will
// use the information they exchange in the routing algorithm (that
// constructs and updates the routing tables) to construct and update the
// clues table". This module provides that substrate: routers originate
// link-state advertisements (their links and their prefixes), flood them,
// run Dijkstra over the converged database and derive their FIBs. Topology
// changes (link failures/recoveries) re-flood and reconverge, producing
// exactly the FIB deltas the route-update machinery in src/core consumes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.h"
#include "rib/fib.h"

namespace cluert::proto {

// One router's link-state advertisement: its live adjacencies and the
// prefixes it originates. `seq` orders re-advertisements.
struct Lsa {
  RouterId origin = kNoRouter;
  std::uint64_t seq = 0;
  std::vector<std::pair<RouterId, unsigned>> links;  // (neighbor, cost)
  std::vector<ip::Prefix4> prefixes;
};

// The flooded database: the newest LSA per origin.
class LsaDatabase {
 public:
  // Installs the LSA if it is newer than what is stored. Returns true iff
  // installed (the caller then floods it onward).
  bool install(const Lsa& lsa) {
    auto [it, inserted] = db_.try_emplace(lsa.origin, lsa);
    if (inserted) return true;
    if (lsa.seq <= it->second.seq) return false;
    it->second = lsa;
    return true;
  }

  const Lsa* find(RouterId origin) const {
    const auto it = db_.find(origin);
    return it == db_.end() ? nullptr : &it->second;
  }

  const std::map<RouterId, Lsa>& all() const { return db_; }
  std::size_t size() const { return db_.size(); }

 private:
  std::map<RouterId, Lsa> db_;  // ordered: deterministic iteration
};

// One router's protocol instance: local state, database, SPF + FIB.
class LinkStateNode {
 public:
  explicit LinkStateNode(RouterId id) : id_(id) {}

  RouterId id() const { return id_; }
  const LsaDatabase& database() const { return db_; }

  // (Re)announces local links/prefixes; returns the LSA to flood.
  Lsa advertise(std::vector<std::pair<RouterId, unsigned>> links,
                std::vector<ip::Prefix4> prefixes) {
    Lsa lsa;
    lsa.origin = id_;
    lsa.seq = ++seq_;
    lsa.links = std::move(links);
    lsa.prefixes = std::move(prefixes);
    db_.install(lsa);
    return lsa;
  }

  // Handles a flooded LSA; true iff it was new (flood it onward).
  bool receive(const Lsa& lsa) { return db_.install(lsa); }

  // Dijkstra over the database (only bidirectionally advertised links
  // count, the standard two-way connectivity check) and FIB derivation:
  // every prefix maps to the first hop toward its originator;
  // self-originated prefixes map to this router's own id (the delivery
  // convention of the net simulator).
  rib::Fib4 computeFib() const;

 private:
  // Shortest-path first hops from this node over the current database.
  std::map<RouterId, RouterId> firstHops() const;

  RouterId id_;
  std::uint64_t seq_ = 0;
  LsaDatabase db_;
};

// Drives a set of nodes to convergence: synchronous flooding with message
// accounting. The simulation owns the "wire"; nodes never see each other
// directly.
class LinkStateSimulation {
 public:
  struct Stats {
    std::uint64_t messages = 0;  // LSA transmissions on links
    std::uint64_t rounds = 0;    // converge() invocations of the pump
  };

  // Routers must be added densely from id 0.
  RouterId addRouter();

  // Declares a bidirectional adjacency with the given cost.
  void link(RouterId a, RouterId b, unsigned cost = 1);

  // Marks a link failed / restored; takes effect at the next converge().
  void failLink(RouterId a, RouterId b);
  void restoreLink(RouterId a, RouterId b);

  // Adds an originated prefix.
  void originate(RouterId r, const ip::Prefix4& prefix);

  // Floods every pending advertisement until the network is quiescent.
  void converge();

  std::size_t routerCount() const { return nodes_.size(); }
  const LinkStateNode& node(RouterId r) const { return nodes_[r]; }
  rib::Fib4 fib(RouterId r) const { return nodes_[r].computeFib(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Adjacency {
    RouterId peer;
    unsigned cost;
    bool up = true;
  };

  std::vector<std::pair<RouterId, unsigned>> liveLinks(RouterId r) const;
  std::vector<ip::Prefix4> prefixesOf(RouterId r) const;

  std::vector<LinkStateNode> nodes_;
  std::vector<std::vector<Adjacency>> adjacency_;
  std::vector<std::vector<ip::Prefix4>> originated_;
  Stats stats_;
};

}  // namespace cluert::proto
