// A small path-vector exterior routing protocol (BGP-flavoured).
//
// §3 grounds the clue mechanism in properties of BGP: "the computation of a
// forwarding table at a router is based on the forwarding tables of its
// neighbors" (similarity); "aggregation of prefixes is discouraged [under
// BGP] ... aggregation is done inside some domains and at the borders of
// the ASs" and "there are other policies carried out by BGP that may cause
// dissimilarities ... policies by which a BGP router tries to hide
// information from neighbors for policing reasons".
//
// This module reproduces those forces so they can be dialled and measured:
// routers advertise (prefix, AS path) to peers, pick shortest-path routes
// with deterministic tie-breaking, refuse paths containing themselves (loop
// prevention), optionally *aggregate* their own address blocks at the
// border, and optionally *filter* what they export per peer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/types.h"
#include "rib/fib.h"

namespace cluert::proto {

// One learned (or originated) route.
struct PvRoute {
  ip::Prefix4 prefix;
  std::vector<RouterId> as_path;  // nearest speaker first; origin last
  RouterId learned_from = kNoRouter;  // kNoRouter: originated here

  std::size_t pathLength() const { return as_path.size(); }
};

// Decides whether `prefix` may be exported to peer `to`. Used to model the
// §3 "hide information from neighbors" policies.
using ExportFilter = std::function<bool(const ip::Prefix4& prefix,
                                        RouterId to)>;

class PathVectorNode {
 public:
  explicit PathVectorNode(RouterId id) : id_(id) {}

  RouterId id() const { return id_; }

  void originate(const ip::Prefix4& prefix) { originated_.push_back(prefix); }

  // Border aggregation: when exporting a prefix covered by one of these
  // blocks — self-originated, or learned from an *internal* peer (a router
  // inside this AS / a customer) — the block is announced instead (once).
  // The more-specifics stay in the local table, which is exactly the §3
  // pattern: "aggregation is done inside some domains and at the borders of
  // the ASs. Once the prefixes ... are sent by the routing algorithm
  // outside of the AS, they are not aggregated anymore."
  void addAggregate(const ip::Prefix4& block) { aggregates_.push_back(block); }

  // Marks a peer as internal (routes learned from it are subject to border
  // aggregation when re-exported).
  void setInternalPeer(RouterId peer) { internal_peers_.push_back(peer); }

  void setExportFilter(ExportFilter filter) { filter_ = std::move(filter); }

  // Installs a route advertisement from `from`. Paths containing this
  // router are rejected (loop prevention). Returns true if the Adj-RIB-In
  // changed (the simulation then knows another round is needed).
  bool receive(RouterId from, const PvRoute& route);

  // Withdraws everything previously learned from `from` (session reset).
  void resetPeer(RouterId from);

  // Best route per prefix: shortest AS path, then lowest first AS, then
  // lowest learned_from — deterministic.
  std::map<ip::Prefix4, PvRoute> locRib() const;

  // The advertisements this node currently exports to `to` (best routes,
  // with this AS prepended, after aggregation and the export filter).
  std::vector<PvRoute> exportsTo(RouterId to) const;

  // The forwarding table: every Loc-RIB prefix mapped to the neighbor it
  // was learned from (self-originated prefixes map to this router).
  rib::Fib4 fib() const;

  const std::vector<ip::Prefix4>& originated() const { return originated_; }

 private:
  bool coveredByAggregate(const ip::Prefix4& p,
                          ip::Prefix4* block_out) const;

  RouterId id_;
  std::vector<ip::Prefix4> originated_;
  std::vector<ip::Prefix4> aggregates_;
  std::vector<RouterId> internal_peers_;
  ExportFilter filter_;
  // Adj-RIB-In: per peer, per prefix.
  std::map<RouterId, std::map<ip::Prefix4, PvRoute>> adj_in_;
};

// Synchronous-round simulation: every round, each node exports its current
// best routes to every peer; rounds repeat until no Adj-RIB-In changes.
class PathVectorSimulation {
 public:
  RouterId addRouter();
  void peer(RouterId a, RouterId b);
  PathVectorNode& node(RouterId r) { return nodes_[r]; }
  const PathVectorNode& node(RouterId r) const { return nodes_[r]; }
  std::size_t routerCount() const { return nodes_.size(); }

  struct Stats {
    std::uint64_t updates = 0;  // route advertisements delivered
    std::uint64_t rounds = 0;
  };

  void converge(std::size_t max_rounds = 64);

  rib::Fib4 fib(RouterId r) const { return nodes_[r].fib(); }
  const Stats& stats() const { return stats_; }

 private:
  std::vector<PathVectorNode> nodes_;
  std::vector<std::vector<RouterId>> peers_;
  Stats stats_;
};

}  // namespace cluert::proto
