#include "proto/path_vector.h"

#include <algorithm>
#include "common/check.h"

namespace cluert::proto {

namespace {

// Deterministic best-route order: shorter AS path, then lexicographically
// smaller path, then lower learned_from.
bool better(const PvRoute& x, const PvRoute& y) {
  if (x.pathLength() != y.pathLength()) {
    return x.pathLength() < y.pathLength();
  }
  if (x.as_path != y.as_path) return x.as_path < y.as_path;
  return x.learned_from < y.learned_from;
}

}  // namespace

bool PathVectorNode::receive(RouterId from, const PvRoute& route) {
  // Loop prevention: reject paths we already appear on.
  if (std::find(route.as_path.begin(), route.as_path.end(), id_) !=
      route.as_path.end()) {
    return false;
  }
  auto& rib = adj_in_[from];
  const auto it = rib.find(route.prefix);
  if (it != rib.end() && it->second.as_path == route.as_path) {
    return false;  // unchanged
  }
  PvRoute stored = route;
  stored.learned_from = from;
  rib[route.prefix] = std::move(stored);
  return true;
}

void PathVectorNode::resetPeer(RouterId from) { adj_in_.erase(from); }

std::map<ip::Prefix4, PvRoute> PathVectorNode::locRib() const {
  std::map<ip::Prefix4, PvRoute> best;
  // Self-originated routes win unconditionally (path length 0).
  for (const ip::Prefix4& p : originated_) {
    PvRoute r;
    r.prefix = p;
    r.learned_from = kNoRouter;
    best[p] = std::move(r);
  }
  for (const auto& [peer, rib] : adj_in_) {
    for (const auto& [prefix, route] : rib) {
      const auto it = best.find(prefix);
      if (it == best.end()) {
        best[prefix] = route;
      } else if (it->second.learned_from != kNoRouter &&
                 better(route, it->second)) {
        it->second = route;
      }
    }
  }
  return best;
}

bool PathVectorNode::coveredByAggregate(const ip::Prefix4& p,
                                        ip::Prefix4* block_out) const {
  for (const ip::Prefix4& block : aggregates_) {
    if (block.isStrictPrefixOf(p)) {
      *block_out = block;
      return true;
    }
  }
  return false;
}

std::vector<PvRoute> PathVectorNode::exportsTo(RouterId to) const {
  std::vector<PvRoute> out;
  std::vector<ip::Prefix4> aggregates_sent;
  for (const auto& [prefix, route] : locRib()) {
    // Never send a route back to the peer it came from (split horizon; the
    // AS-path check would reject it anyway).
    if (route.learned_from == to) continue;
    ip::Prefix4 exported = prefix;
    const bool aggregatable =
        route.learned_from == kNoRouter ||
        std::find(internal_peers_.begin(), internal_peers_.end(),
                  route.learned_from) != internal_peers_.end();
    const bool to_internal =
        std::find(internal_peers_.begin(), internal_peers_.end(), to) !=
        internal_peers_.end();
    if (aggregatable && !to_internal) {
      // Border aggregation of the AS's address space (§3: "aggregation is
      // done inside some domains, and at the borders of the ASs"); exports
      // toward internal peers keep the specifics.
      ip::Prefix4 block;
      if (coveredByAggregate(prefix, &block)) {
        if (std::find(aggregates_sent.begin(), aggregates_sent.end(),
                      block) != aggregates_sent.end()) {
          continue;  // the block was already announced
        }
        aggregates_sent.push_back(block);
        exported = block;
      }
    }
    if (filter_ && !filter_(exported, to)) continue;
    PvRoute adv;
    adv.prefix = exported;
    adv.as_path.reserve(route.as_path.size() + 1);
    adv.as_path.push_back(id_);
    adv.as_path.insert(adv.as_path.end(), route.as_path.begin(),
                       route.as_path.end());
    out.push_back(std::move(adv));
  }
  return out;
}

rib::Fib4 PathVectorNode::fib() const {
  std::vector<rib::Fib4::EntryT> entries;
  for (const auto& [prefix, route] : locRib()) {
    entries.push_back(
        {prefix,
         route.learned_from == kNoRouter ? id_ : route.learned_from});
  }
  return rib::Fib4(std::move(entries));
}

RouterId PathVectorSimulation::addRouter() {
  const auto id = static_cast<RouterId>(nodes_.size());
  nodes_.emplace_back(id);
  peers_.emplace_back();
  return id;
}

void PathVectorSimulation::peer(RouterId a, RouterId b) {
  CLUERT_CHECK(a < nodes_.size() && b < nodes_.size() && a != b)
      << "peering " << a << " <-> " << b << " with " << nodes_.size() << " nodes";
  peers_[a].push_back(b);
  peers_[b].push_back(a);
}

void PathVectorSimulation::converge(std::size_t max_rounds) {
  for (std::size_t round = 0; round < max_rounds; ++round) {
    ++stats_.rounds;
    bool changed = false;
    // Synchronous round: everyone exports, then everyone absorbs.
    std::vector<std::vector<std::pair<RouterId, PvRoute>>> inbox(
        nodes_.size());
    for (RouterId r = 0; r < nodes_.size(); ++r) {
      for (RouterId p : peers_[r]) {
        for (PvRoute& adv : nodes_[r].exportsTo(p)) {
          inbox[p].emplace_back(r, std::move(adv));
          ++stats_.updates;
        }
      }
    }
    for (RouterId r = 0; r < nodes_.size(); ++r) {
      for (auto& [from, adv] : inbox[r]) {
        if (nodes_[r].receive(from, adv)) changed = true;
      }
    }
    if (!changed) return;
  }
}

}  // namespace cluert::proto
