#!/usr/bin/env bash
# topo_run.sh — spin up a line topology of cluertd daemons on loopback,
# inject clue-tagged traffic at one end, and assert end-to-end behavior:
#
#   injector → hop1 → hop2 → ... → hopN → collector
#
# Each hop runs the clue protocol: it looks the packet up at a pinned table
# version (differential oracle on), re-stamps its own BMP as the clue, and
# forwards. Hop 1 also samples 1-in-8 packets into the distributed tracer;
# downstream hops propagate the trace context. The script asserts:
#   * the collector received every injected packet, all decoding cleanly;
#   * zero oracle mismatches on every hop (/status);
#   * per-hop case-1 lookups > 0 and live per-peer rx/tx counters
#     (tools/metrics_diff.py --require-nonzero on the /metrics scrape);
#   * the merged /trace scrapes contain >=1 complete trace covering every
#     hop with monotone timestamps and per-hop latency percentiles
#     (tools/trace_merge.py --require-hops);
#   * SIGQUIT makes every daemon dump a parseable flight-recorder JSON and
#     keep running;
#   * every daemon exits 0 on SIGTERM (bounded drain, no crash).
#
# --topology star|ring swaps the line for a multi-peer shape (same clue
# datapath, different wiring) and gates on per-peer counter conservation:
# for every directed link a→b the sender's netio_peer_tx_packets_total
# {peer=...} must equal the receiver's netio_peer_rx_packets_total{src=...}.
#   * star: 3 leaves fan in to a hub (distinct tables via the neighbor
#     chain); the hub egresses to the collector. Exercises multi-source rx
#     accounting under concurrent injectors' clues.
#   * ring: 5 nodes, ring-shortest forwarding over one shared prefix
#     universe (wire_play gen --ring); each node's own blocks egress to the
#     collector via peer.<self>. Exercises per-next-hop egress choice.
# The trace and flight-recorder gates are line-only (hop 1 is the tracer).
#
# Usage:
#   tools/topo_run.sh [--smoke]           # 3 hops, 10k packets (CI gate 7)
#   tools/topo_run.sh --hops N --count M [--mode simple|advance] \
#                     [--method Patricia] [--size S] [--seed X] [--keep] \
#                     [--topology line|star|ring]
set -u

cd "$(dirname "$0")/.." || exit 1
ROOT=$(pwd)
BUILD=${BUILD_DIR:-build}
CLUERTD="$ROOT/$BUILD/src/cluertd"
WIRE_PLAY="$ROOT/$BUILD/tools/wire_play"
METRICS_DIFF="$ROOT/tools/metrics_diff.py"

HOPS=3
COUNT=10000
MODE=advance
METHOD=Patricia
SIZE=4000
SEED=7
KEEP=0
TOPOLOGY=line
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) HOPS=3; COUNT=10000 ;;
    --hops) HOPS=$2; shift ;;
    --count) COUNT=$2; shift ;;
    --mode) MODE=$2; shift ;;
    --method) METHOD=$2; shift ;;
    --size) SIZE=$2; shift ;;
    --seed) SEED=$2; shift ;;
    --keep) KEEP=1 ;;
    --topology) TOPOLOGY=$2; shift ;;
    *) echo "topo_run: unknown option $1" >&2; exit 2 ;;
  esac
  shift
done
case "$TOPOLOGY" in
  line|star|ring) ;;
  *) echo "topo_run: unknown --topology $TOPOLOGY" >&2; exit 2 ;;
esac

for bin in "$CLUERTD" "$WIRE_PLAY"; do
  if [ ! -x "$bin" ]; then
    echo "topo_run: missing $bin (build the '$BUILD' tree first)" >&2
    exit 1
  fi
done

DIR=$(mktemp -d /tmp/topo_run.XXXXXX)
PIDS=""
cleanup() {
  for pid in $PIDS; do kill -KILL "$pid" 2>/dev/null; done
  [ "$KEEP" = 1 ] && echo "topo_run: artifacts kept in $DIR" || rm -rf "$DIR"
}
trap cleanup EXIT

fail() { echo "topo_run: FAIL: $*" >&2; exit 1; }

# Ports: a random base well above the ephemeral floor collision zone.
BASE=$(( (RANDOM % 2000) + 21000 ))
data_port() { echo $((BASE + $1)); }
admin_port() { echo $((BASE + 100 + $1)); }
COLLECT_PORT=$((BASE + 99))

# Shared by every topology: wait for a daemon's admin plane, scrape
# status+metrics with the baseline per-node gates, drain everything with
# SIGTERM and require exit 0.
wait_healthz() { # name admin_port
  local ok=0
  for _ in $(seq 1 50); do
    if "$WIRE_PLAY" get "127.0.0.1:$2" /healthz >/dev/null 2>&1; then
      ok=1; break
    fi
    sleep 0.1
  done
  [ "$ok" = 1 ] || { cat "$DIR/$1.log" >&2; fail "$1 did not start"; }
}
scrape_node() { # name admin_port case_regex
  "$WIRE_PLAY" get "127.0.0.1:$2" /status > "$DIR/$1.status.json" \
    || fail "$1 /status"
  "$WIRE_PLAY" get "127.0.0.1:$2" /metrics > "$DIR/$1.prom" \
    || fail "$1 /metrics"
  grep -q '"oracle_mismatches":0,' "$DIR/$1.status.json" \
    || fail "$1 reported oracle mismatches: $(cat "$DIR/$1.status.json")"
  python3 "$METRICS_DIFF" --require-nonzero "$3" "$DIR/$1.prom" \
    || fail "$1: no clue-path lookups matching $3"
  python3 "$METRICS_DIFF" --require-nonzero 'netio_peer_rx_packets_total' \
    "$DIR/$1.prom" || fail "$1: per-peer rx counters dead"
  python3 "$METRICS_DIFF" --require-nonzero 'netio_peer_tx_packets_total' \
    "$DIR/$1.prom" || fail "$1: per-peer tx counters dead"
}
drain_all() {
  for pid in $PIDS; do kill -TERM "$pid" 2>/dev/null; done
  local rc_all=0 rc
  for pid in $PIDS; do
    wait "$pid"
    rc=$?
    [ "$rc" = 0 ] || { echo "topo_run: pid $pid exit $rc" >&2; rc_all=1; }
  done
  PIDS=""
  [ "$rc_all" = 0 ] || fail "unclean shutdown"
}
# conservation EDGE...: each EDGE is "senderfile:peerLabel=receiverfile:srcLabel
# =what" — sum the sender's tx{peer="peerLabel"} and the receiver's
# rx{src="srcLabel"} series (across shards) and require exact equality.
# UDP on loopback does not reorder or drop under these rates, so any skew is
# an accounting bug, which is the point of the gate.
conservation() {
  python3 - "$DIR" "$@" <<'PYEOF'
import re, sys
d = sys.argv[1]
line = re.compile(r'^(\w+)(\{[^}]*\})?\s+([0-9.eE+-]+)$')
def series(path, metric, label_kv):
    total, seen = 0.0, False
    for ln in open(f"{d}/{path}"):
        m = line.match(ln.strip())
        if not m or m.group(1) != metric:
            continue
        if label_kv not in (m.group(2) or ""):
            continue
        total += float(m.group(3)); seen = True
    return total, seen
bad = False
for edge in sys.argv[2:]:
    spec, what = edge.rsplit("=", 1)
    tx_spec, rx_spec = spec.split("=")
    tx_file, peer = tx_spec.split(":")
    rx_file, src = rx_spec.split(":")
    tx, tx_seen = series(tx_file, "netio_peer_tx_packets_total",
                         f'peer="{peer}"')
    rx, rx_seen = series(rx_file, "netio_peer_rx_packets_total",
                         f'src="{src}"')
    if not (tx_seen and rx_seen and tx == rx and tx > 0):
        print(f"conservation violated on {what}: "
              f"{tx_file} tx[peer={peer}]={tx if tx_seen else 'absent'} vs "
              f"{rx_file} rx[src={src}]={rx if rx_seen else 'absent'}")
        bad = True
    else:
        print(f"conserved {what}: {int(tx)} packets")
sys.exit(1 if bad else 0)
PYEOF
}

if [ "$TOPOLOGY" != line ]; then
  # shellcheck disable=SC1090
  . "$ROOT/tools/topo_run_shapes.sh"
  if [ "$TOPOLOGY" = star ]; then run_star; else run_ring; fi
  exit 0
fi

echo "topo_run: $HOPS hops, $COUNT packets, mode=$MODE method=$METHOD (base port $BASE)"

# 1. Tables: a neighbor-derived chain (inj.routes is hop1's neighbor).
"$WIRE_PLAY" gen --out "$DIR" --hops "$HOPS" --size "$SIZE" --seed "$SEED" \
  || fail "table generation"

# 2. Configs + daemons. hopK forwards everything to hop(K+1); the last hop
#    forwards to the collector.
for k in $(seq 1 "$HOPS"); do
  if [ "$k" = "$HOPS" ]; then
    next_port=$COLLECT_PORT
  else
    next_port=$(data_port $((k + 1)))
  fi
  {
    echo "name = hop$k"
    echo "router_id = $k"
    echo "listen = 127.0.0.1:$(data_port "$k")"
    echo "admin = 127.0.0.1:$(admin_port "$k")"
    echo "routes = $DIR/hop$k.routes"
    if [ "$k" = 1 ]; then
      echo "neighbor_routes = $DIR/inj.routes"
    else
      echo "neighbor_routes = $DIR/hop$((k - 1)).routes"
    fi
    echo "peer.default = 127.0.0.1:$next_port"
    echo "method = $METHOD"
    echo "mode = $MODE"
    echo "oracle = 1"
    echo "drain_ms = 2000"
    # Hop 1 is the ingress tracer; the rest only propagate contexts they
    # receive, so every complete trace spans the full line.
    [ "$k" = 1 ] && echo "trace_sample = 8"
    echo "flight_out = $DIR/hop$k.flight.json"
  } > "$DIR/hop$k.conf"
  "$CLUERTD" --config "$DIR/hop$k.conf" > "$DIR/hop$k.log" 2>&1 &
  PIDS="$PIDS $!"
done

# Wait until every admin plane answers.
for k in $(seq 1 "$HOPS"); do
  ok=0
  for _ in $(seq 1 50); do
    if "$WIRE_PLAY" get "127.0.0.1:$(admin_port "$k")" /healthz \
        >/dev/null 2>&1; then
      ok=1; break
    fi
    sleep 0.1
  done
  [ "$ok" = 1 ] || { cat "$DIR/hop$k.log" >&2; fail "hop$k did not start"; }
done

# 3. Collector at the end of the line, then inject at the head.
"$WIRE_PLAY" collect --listen "127.0.0.1:$COLLECT_PORT" --expect "$COUNT" \
  --timeout-ms 60000 --out "$DIR/collect.txt" > /dev/null 2>&1 &
COLLECT_PID=$!
PIDS="$PIDS $COLLECT_PID"
sleep 0.2

TABLES="$DIR/inj.routes"
for k in $(seq 1 "$HOPS"); do TABLES="$TABLES,$DIR/hop$k.routes"; done
"$WIRE_PLAY" inject --to "127.0.0.1:$(data_port 1)" --tables "$TABLES" \
  --count "$COUNT" --seed "$SEED" --src-id 0 --pps 15000 \
  || fail "injection"

wait "$COLLECT_PID"
COLLECT_RC=$?
PIDS=$(echo "$PIDS" | sed "s/ $COLLECT_PID//")
cat "$DIR/collect.txt"
[ "$COLLECT_RC" = 0 ] || fail "collector: $(cat "$DIR/collect.txt")"

# 4. Per-hop assertions from the admin plane.
for k in $(seq 1 "$HOPS"); do
  addr="127.0.0.1:$(admin_port "$k")"
  "$WIRE_PLAY" get "$addr" /status > "$DIR/hop$k.status.json" \
    || fail "hop$k /status"
  "$WIRE_PLAY" get "$addr" /metrics > "$DIR/hop$k.prom" \
    || fail "hop$k /metrics"
  grep -q '"oracle_mismatches":0,' "$DIR/hop$k.status.json" \
    || fail "hop$k reported oracle mismatches: $(cat "$DIR/hop$k.status.json")"
  python3 "$METRICS_DIFF" --require-nonzero 'lookup_case_total\{case="1"\}' \
    "$DIR/hop$k.prom" || fail "hop$k: no case-1 lookups"
  python3 "$METRICS_DIFF" --require-nonzero 'netio_peer_rx_packets_total' \
    "$DIR/hop$k.prom" || fail "hop$k: per-peer rx counters dead"
  python3 "$METRICS_DIFF" --require-nonzero 'netio_peer_tx_packets_total' \
    "$DIR/hop$k.prom" || fail "hop$k: per-peer tx counters dead"
  grep -q '"pinned_seq":\[' "$DIR/hop$k.status.json" \
    || fail "hop$k /status missing pinned_seq"
  grep -q '"peers_tx":\[' "$DIR/hop$k.status.json" \
    || fail "hop$k /status missing peers_tx"
  spans=$(sed -n 's/.*"trace_spans_recorded":\([0-9]*\),.*/\1/p' \
    "$DIR/hop$k.status.json")
  [ -n "$spans" ] && [ "$spans" -gt 0 ] \
    || fail "hop$k recorded no trace spans"
  rx=$(sed -n 's/.*"rx_packets":\([0-9]*\),.*/\1/p' "$DIR/hop$k.status.json")
  echo "topo_run: hop$k ok (rx=$rx, spans=$spans)"
done

# 5. Distributed-tracing gate: drain every hop's /trace, merge the streams,
#    and require a complete trace across the whole line with latency stats.
TRACE_MERGE="$ROOT/tools/trace_merge.py"
TRACE_FILES=""
for k in $(seq 1 "$HOPS"); do
  "$WIRE_PLAY" get "127.0.0.1:$(admin_port "$k")" /trace \
    > "$DIR/hop$k.trace.jsonl" || fail "hop$k /trace"
  TRACE_FILES="$TRACE_FILES $DIR/hop$k.trace.jsonl"
done
# shellcheck disable=SC2086  # word-splitting the file list is intended
python3 "$TRACE_MERGE" $TRACE_FILES --require-hops "$HOPS" \
  --out "$DIR/trace.json" || fail "no complete $HOPS-hop trace merged"
python3 - "$DIR/trace.json" "$HOPS" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
stats = doc['stats']
for h in range(int(sys.argv[2])):
    d = stats['per_hop'][str(h)]
    assert 0 < d['p50_ns'] <= d['p99_ns'], (h, d)
e = stats['end_to_end']
assert 0 < e['p50_ns'] <= e['p99_ns'], e
PYEOF
[ $? = 0 ] || fail "merged trace lacks per-hop/end-to-end latency stats"
echo "topo_run: trace gate ok ($(sed -n 's/.*"traces_complete": \([0-9]*\).*/\1/p' "$DIR/trace.json" | head -1) complete traces)"

# 6. Flight recorder: SIGQUIT is dump-and-continue — every daemon must
#    write a parseable dump and still answer /healthz afterwards.
for pid in $PIDS; do kill -QUIT "$pid" 2>/dev/null; done
for k in $(seq 1 "$HOPS"); do
  # Poll until the dump exists AND parses (the write is not atomic).
  ok=0
  for _ in $(seq 1 50); do
    if [ -s "$DIR/hop$k.flight.json" ] && python3 -c \
        'import json,sys; json.load(open(sys.argv[1]))' \
        "$DIR/hop$k.flight.json" 2>/dev/null; then
      ok=1; break
    fi
    sleep 0.1
  done
  [ "$ok" = 1 ] || fail "hop$k wrote no parseable flight dump on SIGQUIT"
  python3 - "$DIR/hop$k.flight.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc['rings'], 'dump has no rings'
assert any(r['events'] for r in doc['rings']), 'dump has no events'
PYEOF
  [ $? = 0 ] || fail "hop$k flight dump did not parse"
  "$WIRE_PLAY" get "127.0.0.1:$(admin_port "$k")" /healthz >/dev/null 2>&1 \
    || fail "hop$k died after SIGQUIT"
done
echo "topo_run: flight gate ok (SIGQUIT dumped, daemons alive)"

# 7. Graceful shutdown: SIGTERM each daemon, require exit 0 (clean drain).
for pid in $PIDS; do kill -TERM "$pid" 2>/dev/null; done
RC_ALL=0
for pid in $PIDS; do
  wait "$pid"
  rc=$?
  [ "$rc" = 0 ] || { echo "topo_run: pid $pid exit $rc" >&2; RC_ALL=1; }
done
PIDS=""
[ "$RC_ALL" = 0 ] || fail "unclean shutdown"

echo "topo_run: PASS ($HOPS hops, $COUNT packets end-to-end, 0 oracle mismatches)"
