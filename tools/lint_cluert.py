#!/usr/bin/env python3
"""Project-specific lint gates for cluert (ci.sh gate 8).

Four rules, each encoding a concurrency/robustness contract that generic
tooling cannot check because it is a *project* convention (DESIGN.md §10):

  implicit-seq-cst   Every atomic operation must name its memory order.
                     An argument-less .load()/.store(v)/.fetch_add(v)/
                     .exchange(v)/.compare_exchange_*(...) silently means
                     seq_cst; the project requires the order to be written
                     out (and justified in the DESIGN.md order tables) so a
                     reviewer can tell a deliberate fence from an accident.

  live-access        The raw epoch publication surface (loadLive /
                     storeLive / exchangeLive) may only be touched by the
                     epoch core itself, VersionedTables, and the model-
                     checking harnesses. Everyone else goes through
                     PinnedResolver / ReadGuard / bindVersion, which keep
                     the grace-period discipline for them.

  raw-assert         assert() compiles out under NDEBUG, so release builds
                     silently drop the check. Use CLUERT_CHECK (always on,
                     prints and aborts) from common/check.h.

  raw-new-delete     Owning allocation lives behind containers or the
                     arena code in src/mem/. A naked new/delete elsewhere
                     is either a leak risk or an ownership design smell.

Suppression: append `// cluert-lint: allow(<rule>)` to the offending line.
Exit status: 0 clean, 1 findings, 2 usage error. `--self-test` runs the
rules against embedded positive/negative snippets and exits accordingly.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

RULES = ("implicit-seq-cst", "live-access", "raw-assert", "raw-new-delete")

# Files allowed to touch the raw epoch live-pointer surface.
LIVE_ACCESS_ALLOWED = (
    "src/rib/epoch.h",
    "src/rib/versioned_tables.h",
    "src/mc/harnesses.h",
)

# Allocation code is allowed to allocate.
NEW_DELETE_ALLOWED_DIRS = ("src/mem/",)

ATOMIC_METHODS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "compare_exchange_strong",
    "compare_exchange_weak",
)

SUPPRESS_RE = re.compile(r"//\s*cluert-lint:\s*allow\(([a-z0-9_,\- ]+)\)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, msg: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.msg = msg

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure.

    Keeps `// cluert-lint:` suppression comments intact so per-line
    suppression still works after stripping.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            comment = text[i:j]
            if SUPPRESS_RE.search(comment):
                out.append(comment)
            else:
                out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def suppressed(line: str, rule: str) -> bool:
    m = SUPPRESS_RE.search(line)
    if not m:
        return False
    allowed = {r.strip() for r in m.group(1).split(",")}
    return rule in allowed


def call_argument_span(text: str, open_paren: int) -> str:
    """Return the argument text of the call whose '(' is at open_paren."""
    depth = 0
    for j in range(open_paren, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : j]
    return text[open_paren + 1 :]


ATOMIC_CALL_RE = re.compile(
    r"[.>]\s*(" + "|".join(ATOMIC_METHODS) + r")\s*\("
)

LIVE_CALL_RE = re.compile(r"\b(loadLive|storeLive|exchangeLive)\s*\(")

ASSERT_RE = re.compile(r"(?<![a-zA-Z0-9_])assert\s*\(")

NEW_RE = re.compile(r"(?<![a-zA-Z0-9_:.])new\b(?!\s*\()")
DELETE_RE = re.compile(r"(?<![a-zA-Z0-9_:.])delete(\s*\[\s*\])?\b")


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def line_text(lines: list, lineno: int) -> str:
    return lines[lineno - 1] if 0 < lineno <= len(lines) else ""


def check_file(relpath: str, raw: str) -> list:
    findings = []
    text = strip_comments_and_strings(raw)
    lines = text.split("\n")

    # implicit-seq-cst ------------------------------------------------------
    for m in ATOMIC_CALL_RE.finditer(text):
        method = m.group(1)
        args = call_argument_span(text, m.end() - 1)
        if "memory_order" in args:
            continue
        lineno = line_of(text, m.start())
        ltxt = line_text(lines, lineno)
        if suppressed(ltxt, "implicit-seq-cst"):
            continue
        findings.append(
            Finding(
                relpath,
                lineno,
                "implicit-seq-cst",
                f".{method}() without an explicit std::memory_order "
                "(implicit seq_cst; name the order and justify it in "
                "DESIGN.md §10)",
            )
        )

    # live-access -----------------------------------------------------------
    if not any(relpath.endswith(a) or relpath == a for a in LIVE_ACCESS_ALLOWED):
        for m in LIVE_CALL_RE.finditer(text):
            lineno = line_of(text, m.start())
            ltxt = line_text(lines, lineno)
            if suppressed(ltxt, "live-access"):
                continue
            findings.append(
                Finding(
                    relpath,
                    lineno,
                    "live-access",
                    f"{m.group(1)}() outside the epoch core — go through "
                    "PinnedResolver / ReadGuard / bindVersion so the "
                    "grace-period discipline holds",
                )
            )

    # raw-assert ------------------------------------------------------------
    for m in ASSERT_RE.finditer(text):
        before = text[max(0, m.start() - 7) : m.start()]
        if before.endswith("static_"):
            continue
        lineno = line_of(text, m.start())
        ltxt = line_text(lines, lineno)
        if suppressed(ltxt, "raw-assert"):
            continue
        findings.append(
            Finding(
                relpath,
                lineno,
                "raw-assert",
                "assert() compiles out under NDEBUG — use CLUERT_CHECK "
                "(common/check.h)",
            )
        )

    # raw-new-delete --------------------------------------------------------
    if not any(d in relpath for d in NEW_DELETE_ALLOWED_DIRS):
        for regex, what in ((NEW_RE, "new"), (DELETE_RE, "delete")):
            for m in regex.finditer(text):
                lineno = line_of(text, m.start())
                ltxt = line_text(lines, lineno)
                # `= delete` / `= default`-style declarations are fine.
                if what == "delete" and re.search(
                    r"=\s*delete\b", ltxt
                ):
                    continue
                if suppressed(ltxt, "raw-new-delete"):
                    continue
                findings.append(
                    Finding(
                        relpath,
                        lineno,
                        "raw-new-delete",
                        f"raw `{what}` outside src/mem/ — use containers, "
                        "unique_ptr, or the arena allocators",
                    )
                )

    return findings


def lint_paths(roots: list) -> list:
    findings = []
    for root in roots:
        p = pathlib.Path(root)
        files = (
            [p]
            if p.is_file()
            else sorted(
                f
                for f in p.rglob("*")
                if f.suffix in (".h", ".cc", ".cpp", ".hpp")
            )
        )
        for f in files:
            rel = str(f)
            try:
                raw = f.read_text(encoding="utf-8", errors="replace")
            except OSError as e:
                print(f"error: cannot read {rel}: {e}", file=sys.stderr)
                continue
            findings.extend(check_file(rel, raw))
    return findings


# --- self test --------------------------------------------------------------

SELF_TEST_CASES = [
    # (name, snippet, path, expected rule or None)
    (
        "implicit seq_cst load",
        "int f(std::atomic<int>& a) { return a.load(); }",
        "src/x.h",
        "implicit-seq-cst",
    ),
    (
        "implicit seq_cst fetch_add",
        "void f(std::atomic<int>& a) { a.fetch_add(1); }",
        "src/x.h",
        "implicit-seq-cst",
    ),
    (
        "explicit order ok",
        "int f(std::atomic<int>& a) {\n"
        "  return a.load(std::memory_order_acquire);\n}",
        "src/x.h",
        None,
    ),
    (
        "multiline call with order ok",
        "void f(std::atomic<int>& a) {\n"
        "  a.store(1,\n          std::memory_order_release);\n}",
        "src/x.h",
        None,
    ),
    (
        "suppressed atomic",
        "int f(A& a) { return a.load(); }"
        "  // cluert-lint: allow(implicit-seq-cst)",
        "src/x.h",
        None,
    ),
    (
        "atomic call in comment ignored",
        "// counter.load() is wrong here\nint x;",
        "src/x.h",
        None,
    ),
    (
        "live access outside core",
        "void f(E& e) { auto* v = e.loadLive(); (void)v; }",
        "src/lookup/engine.h",
        "live-access",
    ),
    (
        "live access inside core ok",
        "V* loadLive() const { return live_.load(std::memory_order_seq_cst); }",
        "src/rib/epoch.h",
        None,
    ),
    (
        "raw assert",
        "#include <cassert>\nvoid f(int x) { assert(x > 0); }",
        "src/x.cc",
        "raw-assert",
    ),
    (
        "static_assert ok",
        "static_assert(sizeof(int) == 4, \"\");",
        "src/x.h",
        None,
    ),
    (
        "CLUERT_CHECK ok",
        "void f(int x) { CLUERT_CHECK(x > 0, \"x\"); }",
        "src/x.cc",
        None,
    ),
    (
        "raw new",
        "int* f() { return new int(3); }",
        "src/x.cc",
        "raw-new-delete",
    ),
    (
        "raw delete",
        "void f(int* p) { delete p; }",
        "src/x.cc",
        "raw-new-delete",
    ),
    (
        "deleted function ok",
        "struct S { S(const S&) = delete; };",
        "src/x.h",
        None,
    ),
    (
        "new in mem ok",
        "char* f() { return new char[64]; }",
        "src/mem/arena.cc",
        None,
    ),
    (
        "new in string literal ok",
        'const char* s = "brand new delete this";',
        "src/x.h",
        None,
    ),
]


def self_test() -> int:
    failures = 0
    for name, snippet, path, expected in SELF_TEST_CASES:
        found = check_file(path, snippet)
        rules = {f.rule for f in found}
        if expected is None:
            if rules:
                print(f"self-test FAIL [{name}]: expected clean, got {rules}")
                failures += 1
        else:
            if expected not in rules:
                print(
                    f"self-test FAIL [{name}]: expected {expected}, "
                    f"got {rules or 'clean'}"
                )
                failures += 1
            extra = rules - {expected}
            if extra:
                print(f"self-test FAIL [{name}]: unexpected extras {extra}")
                failures += 1
    if failures:
        print(f"self-test: {failures} failure(s)")
        return 1
    print(f"self-test: {len(SELF_TEST_CASES)} cases ok")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="run the embedded rule test cases and exit",
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.paths:
        ap.print_usage()
        return 2

    findings = lint_paths(args.paths)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_cluert: {len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
