#!/usr/bin/env bash
# Line-coverage build + report (DESIGN.md §8): configures a dedicated build
# tree with CLUERT_COVERAGE=ON, runs the test suite to fill the gcov
# counters, and aggregates a per-directory report via coverage_report.py.
#
#   tools/run_coverage.sh            # report only
#   tools/run_coverage.sh --check    # enforce the coverage gate (ci.sh)
#   tools/run_coverage.sh --per-file # noisy per-file breakdown
#
# Skips gracefully (exit 0) when gcov or python3 is missing, so the gate
# never blocks a toolchain that cannot measure.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-cov"

# The gate: keep BELOW the measured total (see EXPERIMENTS.md) so it trips
# on real regressions, not run-to-run noise.
GATE=85.0

CHECK=""
EXTRA=()
for arg in "$@"; do
  case "$arg" in
    --check) CHECK="--check $GATE" ;;
    *) EXTRA+=("$arg") ;;
  esac
done

if ! command -v gcov >/dev/null 2>&1; then
  echo "run_coverage: gcov not found; skipping coverage" >&2
  exit 0
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "run_coverage: python3 not found; skipping coverage" >&2
  exit 0
fi

cmake -B "$BUILD" -S "$ROOT" -DCLUERT_COVERAGE=ON >/dev/null
# cluert_mc_mutant_tests rides along: ctest discovers its tests, so a tree
# with only cluert_tests built errors out before the report runs.
cmake --build "$BUILD" -j "$(nproc)" \
  --target cluert_tests cluert_mc_mutant_tests >/dev/null

# Stale counters from a previous run would inflate the report.
find "$BUILD" -name '*.gcda' -delete

(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)" >/dev/null)

# ${EXTRA[@]+...}: expand only when non-empty (set -u + empty array is an
# unbound-variable error on bash < 4.4).
# shellcheck disable=SC2086
python3 "$ROOT/tools/coverage_report.py" --build "$BUILD" --root "$ROOT" \
  $CHECK ${EXTRA[@]+"${EXTRA[@]}"}
