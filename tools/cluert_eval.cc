// cluert_eval — run the paper's §6 evaluation on arbitrary forwarding
// tables.
//
// Usage:
//   cluert_eval gen <prefix-count> <out.fib> [seed]
//       Generate a realistic synthetic table and write it as text
//       ("prefix next_hop" per line).
//   cluert_eval neighbor <in.fib> <out.fib> <shared> <fresh> [seed]
//       Derive a neighboring router's table from an existing one.
//   cluert_eval eval <sender.fib> <receiver.fib> [destinations]
//       Print the 15-way {Common,Simple,Advance} x {5 methods} table of
//       average memory accesses, plus the Claim-1 statistics, for packets
//       flowing sender -> receiver.
//   cluert_eval stats <table.fib>
//       Print size and prefix-length histogram of a table.
//
// FIB files use the same format Fib4::serialize emits, so tables exported
// from real routers can be converted and fed in directly.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/distributed_lookup.h"
#include "core/shaping.h"
#include "rib/table_gen.h"

namespace {

using namespace cluert;
using A = ip::Ip4Addr;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cluert_eval gen <count> <out.fib> [seed]\n"
               "  cluert_eval neighbor <in.fib> <out.fib> <shared> <fresh> "
               "[seed]\n"
               "  cluert_eval eval <sender.fib> <receiver.fib> [dests]\n"
               "  cluert_eval stats <table.fib>\n");
  return 2;
}

std::optional<rib::Fib4> loadFib(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto fib = rib::Fib4::parse(buf.str());
  if (!fib) std::fprintf(stderr, "malformed FIB file %s\n", path);
  return fib;
}

bool saveFib(const rib::Fib4& fib, const char* path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  out << fib.serialize();
  return true;
}

int cmdGen(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto count = static_cast<std::size_t>(std::atol(argv[2]));
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                      : 1;
  Rng rng(seed);
  rib::GenOptions<A> opt;
  opt.size = count;
  opt.histogram = rib::internetLengths1999();
  const auto fib = rib::TableGen<A>::generate(rng, opt);
  if (!saveFib(fib, argv[3])) return 1;
  std::printf("wrote %zu prefixes to %s\n", fib.size(), argv[3]);
  return 0;
}

int cmdNeighbor(int argc, char** argv) {
  if (argc < 6) return usage();
  const auto base = loadFib(argv[2]);
  if (!base) return 1;
  rib::NeighborOptions<A> opt;
  opt.shared = static_cast<std::size_t>(std::atol(argv[4]));
  opt.fresh = static_cast<std::size_t>(std::atol(argv[5]));
  const std::uint64_t seed = argc > 6 ? std::strtoull(argv[6], nullptr, 10)
                                      : 1;
  Rng rng(seed);
  const auto fib = rib::TableGen<A>::deriveNeighbor(*base, rng, opt);
  if (!saveFib(fib, argv[3])) return 1;
  std::printf("wrote %zu prefixes to %s (%zu shared with %s)\n", fib.size(),
              argv[3], base->intersectionSize(fib), argv[2]);
  return 0;
}

int cmdStats(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto fib = loadFib(argv[2]);
  if (!fib) return 1;
  std::size_t by_len[33] = {};
  for (const auto& e : fib->entries()) ++by_len[e.prefix.length()];
  std::printf("%s: %zu prefixes\n", argv[2], fib->size());
  for (int len = 0; len <= 32; ++len) {
    if (by_len[len] == 0) continue;
    std::printf("  /%-2d %8zu  %5.1f%%\n", len, by_len[len],
                100.0 * static_cast<double>(by_len[len]) /
                    static_cast<double>(fib->size()));
  }
  return 0;
}

int cmdEval(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto sender = loadFib(argv[2]);
  const auto receiver = loadFib(argv[3]);
  if (!sender || !receiver) return 1;
  const std::size_t dest_count =
      argc > 4 ? static_cast<std::size_t>(std::atol(argv[4])) : 10'000;

  const auto t1 = sender->buildTrie();
  const auto t2 = receiver->buildTrie();

  // Claim-1 statistics (the Table 2 regime).
  const auto clues = sender->prefixes();
  const std::size_t bad = core::countProblematicClues(t1, t2, clues);
  std::printf("sender %zu prefixes, receiver %zu, intersection %zu\n",
              sender->size(), receiver->size(),
              sender->intersectionSize(*receiver));
  std::printf("problematic clues: %zu / %zu (%.2f%%)\n\n", bad, clues.size(),
              100.0 * static_cast<double>(bad) /
                  static_cast<double>(clues.size()));

  // Destination sample per the §6 methodology.
  Rng rng(4711);
  std::vector<A> dests;
  mem::AccessCounter scratch;
  const auto entries = sender->entries();
  std::size_t attempts = 0;
  while (dests.size() < dest_count && ++attempts < dest_count * 200) {
    A dest(rng.u32());
    if (!entries.empty() && !rng.chance(0.1)) {
      const auto& p = entries[rng.index(entries.size())].prefix;
      dest = p.addr();
      for (int b = p.length(); b < 32; ++b) {
        dest = dest.withBit(b, static_cast<unsigned>(rng.u32() & 1));
      }
    }
    const auto bmp = t1.lookup(dest, scratch);
    if (!bmp || t2.findVertex(bmp->prefix) == nullptr) continue;
    dests.push_back(dest);
  }
  std::vector<core::ClueField> fields(dests.size());
  for (std::size_t i = 0; i < dests.size(); ++i) {
    const auto bmp = t1.lookup(dests[i], scratch);
    fields[i] = bmp ? core::ClueField::of(bmp->prefix.length())
                    : core::ClueField::none();
  }

  std::printf("average memory accesses over %zu destinations:\n\n",
              dests.size());
  std::printf("%-10s", "Mode");
  for (const auto m : lookup::kAllMethods) {
    std::printf("%10s", std::string(lookup::methodName(m)).c_str());
  }
  std::printf("\n");

  lookup::LookupSuite<A> suite(
      {receiver->entries().begin(), receiver->entries().end()});
  for (int mode = 0; mode < 3; ++mode) {
    std::printf("%-10s", mode == 0 ? "Common" : mode == 1 ? "Simple"
                                                          : "Advance");
    for (const auto method : lookup::kAllMethods) {
      mem::AccessCounter acc;
      if (mode == 0) {
        for (const auto& d : dests) suite.engine(method).lookup(d, acc);
      } else {
        typename core::CluePort<A>::Options opt;
        opt.method = method;
        opt.mode = mode == 1 ? lookup::ClueMode::kSimple
                             : lookup::ClueMode::kAdvance;
        opt.learn = false;
        opt.expected_clues = clues.size() + 16;
        core::CluePort<A> port(suite, &t1, opt);
        port.precompute(clues);
        for (std::size_t i = 0; i < dests.size(); ++i) {
          port.process(dests[i], fields[i], acc);
        }
      }
      std::printf("%10.2f", dests.empty()
                                ? 0.0
                                : static_cast<double>(acc.total()) /
                                      static_cast<double>(dests.size()));
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "gen") == 0) return cmdGen(argc, argv);
  if (std::strcmp(argv[1], "neighbor") == 0) return cmdNeighbor(argc, argv);
  if (std::strcmp(argv[1], "eval") == 0) return cmdEval(argc, argv);
  if (std::strcmp(argv[1], "stats") == 0) return cmdStats(argc, argv);
  return usage();
}
