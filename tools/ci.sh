#!/usr/bin/env bash
# End-to-end verification gate. Runs, in order:
#
#   1. warning-free build   cmake -DCLUERT_WERROR=ON (-Wall -Wextra
#                           -Wpedantic -Werror) + full ctest suite
#   2. clang-tidy           tools/run_tidy.sh (skips with a notice when
#                           clang-tidy is not installed)
#   3. sanitizer matrix     tools/run_sanitizers.sh (thread, address,
#                           undefined over the concurrent + Check + Obs
#                           suites)
#   4. metrics tooling      tools/metrics_diff.py --self-test (the Prometheus
#                           snapshot comparator that gates perf regressions)
#
# Exits nonzero on the first finding. This is what "CI green" means for this
# repo; see README "Lint and sanitizer gates".
#
# Usage: tools/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== [1/4] -Werror build + full test suite ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCLUERT_WERROR=ON
cmake --build build-ci -j"$(nproc)"
ctest --test-dir build-ci --output-on-failure

echo "=== [2/4] clang-tidy ==="
tools/run_tidy.sh build-ci

echo "=== [3/4] sanitizer matrix ==="
tools/run_sanitizers.sh

echo "=== [4/4] metrics tooling self-test ==="
python3 tools/metrics_diff.py --self-test

echo "ci.sh: all gates green"
