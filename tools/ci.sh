#!/usr/bin/env bash
# End-to-end verification gate. Runs, in order:
#
#   1. warning-free build   cmake -DCLUERT_WERROR=ON (-Wall -Wextra
#                           -Wpedantic -Werror) + full ctest suite
#   2. clang-tidy           tools/run_tidy.sh (skips with a notice when
#                           clang-tidy is not installed)
#   3. sanitizer matrix     tools/run_sanitizers.sh (thread, address,
#                           undefined over the concurrent + Check + Obs
#                           suites)
#   4. metrics tooling      tools/metrics_diff.py --self-test (the Prometheus
#                           snapshot comparator that gates perf regressions)
#   5. churn smoke          bench_churn --smoke: route updates published from
#                           an updater thread while 4 workers forward, every
#                           packet checked against a per-version oracle; then
#                           metrics_diff.py --require-nonzero asserts the
#                           rib_version_* swap counters actually moved
#
# Exits nonzero on the first finding. This is what "CI green" means for this
# repo; see README "Lint and sanitizer gates".
#
# Usage: tools/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== [1/5] -Werror build + full test suite ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCLUERT_WERROR=ON
cmake --build build-ci -j"$(nproc)"
ctest --test-dir build-ci --output-on-failure

echo "=== [2/5] clang-tidy ==="
tools/run_tidy.sh build-ci

echo "=== [3/5] sanitizer matrix ==="
tools/run_sanitizers.sh

echo "=== [4/5] metrics tooling self-test ==="
python3 tools/metrics_diff.py --self-test

echo "=== [5/5] churn smoke (update-under-traffic oracle) ==="
cmake --build build-ci -j"$(nproc)" --target bench_churn
(cd build-ci && ./bench/bench_churn --smoke)
python3 tools/metrics_diff.py \
  --require-nonzero 'rib_version_(swaps_total|live_seq)' \
  build-ci/BENCH_churn.prom

echo "ci.sh: all gates green"
