#!/usr/bin/env bash
# End-to-end verification gate. Runs, in order:
#
#   1. warning-free build   cmake -DCLUERT_WERROR=ON (-Wall -Wextra
#                           -Wpedantic -Werror) + full ctest suite
#   2. clang-tidy           tools/run_tidy.sh (skips with a notice when
#                           clang-tidy is not installed)
#   3. sanitizer matrix     tools/run_sanitizers.sh (thread, address,
#                           undefined over the concurrent + Check + Obs
#                           suites)
#   4. metrics tooling      tools/metrics_diff.py --self-test (the Prometheus
#                           snapshot comparator that gates perf regressions)
#   5. churn smoke          bench_churn --smoke: route updates published from
#                           an updater thread while 4 workers forward, every
#                           packet checked against a per-version oracle; then
#                           metrics_diff.py --require-nonzero asserts the
#                           rib_version_* swap counters actually moved
#   6. sim + fuzz + coverage  corpus replay through the differential oracle
#                           (tools/sim_run replay tests/corpus), a bounded
#                           fuzz smoke (30s per target, graceful skip when
#                           the tree cannot build fuzzers), and the line
#                           coverage gate (tools/run_coverage.sh --check)
#   7. wire topology smoke  cluertd on the wire: tools/topo_run.sh --smoke
#                           drives a 3-daemon line topology on loopback
#                           (10k packets end-to-end, differential oracle on
#                           every hop, clean SIGTERM drain), then
#                           metrics_diff.py --require-nonzero asserts the
#                           per-peer netio counters moved
#   8. concurrency contracts  tools/lint_cluert.py (--self-test, then the
#                           project lint rules over src/) and a time-bounded
#                           model-checker smoke (tools/mc_run --smoke) over
#                           the SpscRing/Epoch harness registry. The clang
#                           thread-safety analysis (-Wthread-safety) rides
#                           gate 1 automatically when the compiler is clang;
#                           on gcc hosts that check is a documented no-op
#                           (the annotations compile to nothing).
#   9. throughput smoke     bench_throughput --smoke: a fixed deterministic
#                           sharded run (2w/b32, clamp off) that fails on
#                           any sharded-vs-sequential output divergence or
#                           any heap allocation in the steady-state window;
#                           then metrics_diff.py gates its accesses/packet
#                           against the committed baseline, pins
#                           steady_allocs at 0 and shard imbalance under an
#                           absolute ceiling (--max: the baseline values sit
#                           at/below --min-base, where a relative diff would
#                           skip), and asserts the counting alloc hook was
#                           actually compiled in.
#  10. multi-router topology  the control-plane suite: sim_run replays the
#                           topo4 corpus (RIP convergence transients caught
#                           by the per-hop oracle, gate already rides 6 via
#                           `sim_run replay tests/corpus`), bench_topo
#                           --smoke runs a 5-node ring flap storm with
#                           per-publish validation and zero-strict-mismatch
#                           gating, metrics_diff.py --require-nonzero
#                           asserts the storm actually forwarded, flapped,
#                           and reconverged, and topo_run.sh drives the star
#                           and ring daemon topologies with per-peer counter
#                           conservation.
#
# Exits nonzero on the first finding. This is what "CI green" means for this
# repo; see README "Lint and sanitizer gates".
#
# Usage: tools/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== [1/10] -Werror build + full test suite ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCLUERT_WERROR=ON
cmake --build build-ci -j"$(nproc)"
ctest --test-dir build-ci --output-on-failure

echo "=== [2/10] clang-tidy ==="
tools/run_tidy.sh build-ci

echo "=== [3/10] sanitizer matrix ==="
tools/run_sanitizers.sh

echo "=== [4/10] metrics tooling self-test ==="
python3 tools/metrics_diff.py --self-test

echo "=== [5/10] churn smoke (update-under-traffic oracle) ==="
cmake --build build-ci -j"$(nproc)" --target bench_churn
(cd build-ci && ./bench/bench_churn --smoke)
python3 tools/metrics_diff.py \
  --require-nonzero 'rib_version_(swaps_total|live_seq)' \
  build-ci/BENCH_churn.prom

echo "=== [6/10] corpus replay + fuzz smoke + coverage gate ==="
cmake --build build-ci -j"$(nproc)" --target sim_run
build-ci/tools/sim_run replay tests/corpus

# Bounded fuzz smoke: each target runs a random stream for at most 30s. A
# timeout (exit 124) is a pass — the bound exists to cap gate time, not to
# demand the stream finishes; any crash/abort still fails the gate.
if cmake -B build-fuzz-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
     -DCLUERT_FUZZ=ON >/dev/null; then
  cmake --build build-fuzz-ci -j"$(nproc)" \
    --target fuzz_clue_header fuzz_wire_header fuzz_prefix_decode fuzz_snapshot_load \
             fuzz_fib_delta fuzz_scenario_parse
  # Flag dialect depends on how the tree was configured: a libFuzzer build
  # takes -runs=, the standalone driver takes --rand.
  if grep -q '^CLUERT_HAVE_LIBFUZZER:INTERNAL=1' build-fuzz-ci/CMakeCache.txt; then
    SMOKE_ARGS=(-runs=200000 -seed=1 -max_len=512)
  else
    SMOKE_ARGS=(--rand 200000 --seed 1 --max-len 512)
  fi
  for fuzzer in build-fuzz-ci/tests/fuzz/fuzz_*; do
    [[ -x "$fuzzer" ]] || continue
    echo "--- fuzz smoke: $(basename "$fuzzer")"
    rc=0
    timeout 30 "$fuzzer" "${SMOKE_ARGS[@]}" >/dev/null 2>&1 || rc=$?
    if [[ $rc -ne 0 && $rc -ne 124 ]]; then
      echo "fuzz smoke FAILED: $fuzzer (exit $rc)" >&2
      exit "$rc"
    fi
  done
else
  echo "fuzz smoke: CLUERT_FUZZ configure failed; skipping" >&2
fi

tools/run_coverage.sh --check

echo "=== [7/10] wire topology smoke (cluertd line topology) ==="
cmake --build build-ci -j"$(nproc)" --target cluertd wire_play
# topo_run asserts delivery, zero oracle mismatches, nonzero case-1 and
# per-peer netio_peer_{rx,tx}_packets_total on every hop (metrics_diff.py
# --require-nonzero against each /metrics scrape), and exit-0 SIGTERM drains.
BUILD_DIR=build-ci tools/topo_run.sh --smoke

echo "=== [8/10] concurrency contracts (lint + model-checker smoke) ==="
python3 tools/lint_cluert.py --self-test
python3 tools/lint_cluert.py src/
cmake --build build-ci -j"$(nproc)" --target mc_run
# Exhaustive bounded runs for the fast harnesses take ~2 s; the budget is a
# hard stop so a future harness that blows up the frontier degrades the
# gate to "bounded smoke" instead of hanging CI. Violations still fail
# regardless of where the budget lands.
build-ci/tools/mc_run --smoke 30000

echo "=== [9/10] throughput smoke (zero-alloc hot path + perf trajectory) ==="
cmake --build build-ci -j"$(nproc)" --target bench_throughput
(cd build-ci && ./bench/bench_throughput --smoke)
python3 tools/metrics_diff.py \
  --match 'throughput_smoke_' --threshold 5 \
  --max 'throughput_smoke_steady_allocs:0' \
  --max 'throughput_smoke_shard_imbalance:1.6' \
  --require-nonzero 'throughput_smoke_alloc_hook_active' \
  bench/BENCH_throughput_smoke_baseline.prom \
  build-ci/BENCH_throughput_smoke.prom

echo "=== [10/10] multi-router topology (flap storm + daemon shapes) ==="
# Corpus replay already covered the committed topo4 repros in gate 6; this
# gate adds the flap-storm smoke (5-node ring, per-publish validation, zero
# strict mismatches enforced by the binary's own exit code) and liveness
# over its counters — a storm that stopped forwarding, flapping, or
# converging would otherwise still "pass".
cmake --build build-ci -j"$(nproc)" --target bench_topo
(cd build-ci && ./bench/bench_topo --smoke)
# --require-nonzero is at-least-one semantics, so each liveness counter gets
# its own invocation; the strict-mismatch ceiling rides the first.
for series in topo_smoke_forwarded_hops topo_smoke_delivered \
              topo_smoke_flaps topo_smoke_convergence_samples; do
  python3 tools/metrics_diff.py \
    --require-nonzero "$series" \
    --max 'topo_smoke_strict_mismatches:0' \
    build-ci/BENCH_topo_smoke.prom
done
# Daemon-level star and ring shapes: end-to-end delivery, zero oracle
# mismatches, per-peer tx/rx counter conservation on every traffic-carrying
# link (tools/topo_run_shapes.sh).
BUILD_DIR=build-ci tools/topo_run.sh --topology star --count 3000 --size 2000
BUILD_DIR=build-ci tools/topo_run.sh --topology ring --count 3000 --size 2000

echo "ci.sh: all gates green"
