#!/usr/bin/env python3
"""Compare two Prometheus text-exposition snapshots and gate on regressions.

The obs exporters (src/obs/export.cc) and the bench binaries emit metric
snapshots (BENCH_throughput_metrics.prom, pipeline_metrics.prom). This tool
diffs two such files series-by-series so a perf trajectory can be gated in
CI: it exits nonzero when any matched series moved in the regression
direction by more than the threshold.

Usage:
  tools/metrics_diff.py baseline.prom current.prom
      [--threshold PCT]      relative-change gate, percent (default 5)
      [--match REGEX]        only series whose name matches (default: all)
      [--direction up|down|both]
                             which movement is a regression (default up —
                             right for cost metrics like accesses and
                             latency, where bigger is worse)
      [--min-base VALUE]     ignore series whose baseline is below this
                             (default 1: tiny denominators make noise)
  tools/metrics_diff.py --require-nonzero REGEX snapshot.prom
      single-snapshot liveness gate: exits nonzero unless at least one
      series matching REGEX has a nonzero value. Used by tools/ci.sh to
      assert the churn smoke run actually exercised the swap path
      (rib_version_swaps_total > 0) — a zero counter means the bench
      silently stopped doing its job, which no diff against a baseline
      would catch. Composes with the two-snapshot diff form (the check
      then applies to `current`).
  tools/metrics_diff.py --max REGEX:VALUE snapshot.prom   (repeatable)
      absolute-ceiling gate on the current (or only) snapshot: every series
      matching REGEX must be <= VALUE; no matching series at all also
      fails (a vanished gate series means the bench stopped emitting it).
      This is the right tool when the baseline value sits below --min-base
      (a relative diff would skip it — e.g. shard imbalance hovering near
      1.0) or when the bound is a hard contract rather than a trajectory
      (steady_allocs:0). Composes with the two-snapshot diff form.
  tools/metrics_diff.py baseline.prom current.prom \\
      --quantile p99:lookup_accesses:10 [--quantile p50:...:5 ...]
      histogram-aware quantile gate: estimates the given quantile from the
      metric's cumulative `<metric>_bucket{le="..."}` series on each side
      (Prometheus-style linear interpolation inside the bucket) and fails
      when the current estimate exceeds the baseline by more than
      max_regression percent. Raw bucket diffs are noisy under load shifts
      — counts move between buckets without the distribution's tail
      moving — so tail gates should use this, not --threshold.
  tools/metrics_diff.py --self-test

A series is identified by its full exposition form, e.g.
  lookup_case_total{case="3"}
Histogram buckets are compared like any other series (their names carry
_bucket/_sum/_count suffixes). Series present on only one side are reported
but never gate — a new metric family is not a regression.
"""

import argparse
import re
import sys

_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[^}]*\})?'
    r'\s+(?P<value>[^\s]+)'
    r'(?:\s+\d+)?$'  # optional timestamp, ignored
)


def parse(text):
    """Returns {series_key: float_value} for one exposition document."""
    out = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith('#'):
            continue
        m = _LINE.match(line)
        if m is None:
            raise ValueError('line %d: unparseable sample: %r' % (lineno, line))
        key = m.group('name') + (m.group('labels') or '')
        raw = m.group('value')
        if raw == '+Inf':
            value = float('inf')
        elif raw == '-Inf':
            value = float('-inf')
        else:
            value = float(raw)
        if key in out:
            raise ValueError('line %d: duplicate series %s' % (lineno, key))
        out[key] = value
    return out


def diff(base, cur, threshold_pct, direction, min_base, match):
    """Returns (report_lines, regressions) comparing cur against base."""
    report = []
    regressions = []
    matcher = re.compile(match) if match else None
    for key in sorted(set(base) | set(cur)):
        if matcher is not None and not matcher.search(key):
            continue
        if key not in base:
            report.append('new     %-60s %g' % (key, cur[key]))
            continue
        if key not in cur:
            report.append('gone    %-60s (was %g)' % (key, base[key]))
            continue
        b, c = base[key], cur[key]
        if b == c:
            continue
        if b == 0 or abs(b) < min_base:
            report.append('skip    %-60s %g -> %g (baseline below --min-base)'
                          % (key, b, c))
            continue
        pct = (c - b) / abs(b) * 100.0
        line = '%+8.2f%% %-60s %g -> %g' % (pct, key, b, c)
        worse = (direction == 'both' and abs(pct) > threshold_pct) or \
                (direction == 'up' and pct > threshold_pct) or \
                (direction == 'down' and pct < -threshold_pct)
        if worse:
            regressions.append(line)
        else:
            report.append(line)
    return report, regressions


def require_nonzero(cur, pattern):
    """Returns (matched_series, ok): ok iff any match has a nonzero value."""
    rx = re.compile(pattern)
    hits = {k: v for k, v in cur.items() if rx.search(k)}
    return hits, any(v != 0 for v in hits.values())


def parse_max_spec(spec):
    """'regex:3.5' -> ('regex', 3.5). The regex may itself contain colons
    (label matchers), so the split is on the LAST colon. Raises ValueError."""
    regex, sep, raw = spec.rpartition(':')
    if not sep or not regex:
        raise ValueError('bad --max spec %r (want SERIES_REGEX:VALUE)' % spec)
    try:
        limit = float(raw)
    except ValueError:
        raise ValueError('bad --max limit in %r (not a number)' % spec)
    return regex, limit


def max_gate(cur, specs):
    """Returns (report_lines, regression_lines) for --max specs: every series
    matching the regex must be <= the limit; zero matches is a failure."""
    report, regressions = [], []
    for spec in specs:
        regex, limit = parse_max_spec(spec)
        rx = re.compile(regex)
        hits = {k: v for k, v in cur.items() if rx.search(k)}
        if not hits:
            regressions.append('max %s: no series matching the pattern'
                               % regex)
            continue
        for key in sorted(hits):
            line = 'max     %-60s %g (limit %g)' % (key, hits[key], limit)
            (regressions if hits[key] > limit else report).append(line)
    return report, regressions


_LE = re.compile(r'le="([^"]+)"')


def histogram_quantile(series, metric, q):
    """Estimates quantile q (0..1) of histogram `metric` from its cumulative
    _bucket series, Prometheus-style: find the bucket the rank lands in and
    interpolate linearly between its bounds. Buckets across distinct label
    sets (e.g. per-worker) are summed per `le` first. Returns None when the
    metric has no buckets or no observations."""
    prefix = metric + '_bucket{'
    by_le = {}
    for key, value in series.items():
        if not key.startswith(prefix):
            continue
        m = _LE.search(key)
        if m is None:
            continue
        raw = m.group(1)
        le = float('inf') if raw == '+Inf' else float(raw)
        by_le[le] = by_le.get(le, 0.0) + value
    if float('inf') not in by_le:
        return None
    total = by_le[float('inf')]
    if total <= 0:
        return None
    rank = q * total
    prev_le, prev_cum = 0.0, 0.0
    for le in sorted(by_le):
        cum = by_le[le]
        if cum >= rank:
            if le == float('inf'):
                return prev_le  # tail lands past the last finite bound
            if cum == prev_cum:
                return le
            return prev_le + (le - prev_le) * (rank - prev_cum) / (cum - prev_cum)
        prev_le, prev_cum = le, cum
    return prev_le


def parse_quantile_spec(spec):
    """'p99:metric:10' -> (0.99, 'metric', 10.0). Raises ValueError."""
    parts = spec.split(':')
    if len(parts) != 3 or not parts[0].startswith('p'):
        raise ValueError('bad --quantile spec %r (want pNN:metric:max_pct)'
                         % spec)
    q = float(parts[0][1:]) / 100.0
    if not 0 < q < 1:
        raise ValueError('quantile out of range in %r' % spec)
    return q, parts[1], float(parts[2])


def quantile_gate(base, cur, specs):
    """Returns (report_lines, regression_lines) for --quantile specs."""
    report, regressions = [], []
    for spec in specs:
        q, metric, max_pct = parse_quantile_spec(spec)
        bq = histogram_quantile(base, metric, q)
        cq = histogram_quantile(cur, metric, q)
        label = 'p%g(%s)' % (q * 100, metric)
        if bq is None or cq is None:
            regressions.append('%s: missing histogram (%s side)'
                               % (label, 'baseline' if bq is None else
                                  'current'))
            continue
        if bq == 0:
            report.append('skip    %s baseline is 0 (-> %g)' % (label, cq))
            continue
        pct = (cq - bq) / bq * 100.0
        line = '%+8.2f%% %-60s %g -> %g (max +%g%%)' % (pct, label, bq, cq,
                                                        max_pct)
        (regressions if pct > max_pct else report).append(line)
    return report, regressions


def self_test():
    doc = '''\
# HELP lookup_accesses Dependent memory accesses per lookup
# TYPE lookup_accesses histogram
lookup_accesses_bucket{le="1"} 10
lookup_accesses_bucket{le="+Inf"} 12
lookup_accesses_sum 30
lookup_accesses_count 12
# TYPE temp gauge
temp 1.5
up_total{router="1"} 7 1699999999
'''
    parsed = parse(doc)
    assert parsed['lookup_accesses_bucket{le="1"}'] == 10.0
    assert parsed['lookup_accesses_bucket{le="+Inf"}'] == 12.0
    assert parsed['lookup_accesses_sum'] == 30.0
    assert parsed['temp'] == 1.5
    assert parsed['up_total{router="1"}'] == 7.0  # timestamp stripped
    assert len(parsed) == 6

    base = {'a': 100.0, 'b': 10.0, 'c': 5.0, 'gone': 1.0, 'tiny': 0.1}
    cur = {'a': 104.0, 'b': 12.0, 'c': 5.0, 'new': 3.0, 'tiny': 9.0}
    report, regressions = diff(base, cur, threshold_pct=5.0, direction='up',
                               min_base=1.0, match=None)
    # a: +4% under threshold; b: +20% regression; c unchanged;
    # gone/new informational; tiny skipped by --min-base.
    assert len(regressions) == 1 and ' b ' in regressions[0], regressions
    assert any(r.startswith('new') for r in report)
    assert any(r.startswith('gone') for r in report)
    assert any(r.startswith('skip') for r in report)
    assert not any(' c ' in r for r in report)

    _, down = diff(base, cur, 5.0, 'down', 1.0, None)
    assert down == []
    _, both = diff({'x': 10.0}, {'x': 8.0}, 5.0, 'both', 1.0, None)
    assert len(both) == 1

    _, matched = diff(base, cur, 5.0, 'up', 1.0, match='^a$')
    assert matched == []

    snap = {'rib_version_swaps_total': 120.0, 'rib_version_live_seq': 121.0,
            'rib_version_full_rebuilds_total': 0.0, 'other': 3.0}
    hits, ok = require_nonzero(snap, r'rib_version_swaps_total')
    assert ok and len(hits) == 1
    hits, ok = require_nonzero(snap, r'full_rebuilds')
    assert not ok and len(hits) == 1  # present but zero: not alive
    hits, ok = require_nonzero(snap, r'no_such_series')
    assert not ok and hits == {}

    # Histogram quantiles: 100 observations, 90 in [0,1], 8 in (1,4],
    # 2 in (4,+Inf). p50 interpolates inside the first bucket; p99 lands in
    # the +Inf bucket and clamps to the last finite bound.
    hist = {
        'h_bucket{le="1"}': 90.0,
        'h_bucket{le="4"}': 98.0,
        'h_bucket{le="+Inf"}': 100.0,
        'h_sum': 150.0,
        'h_count': 100.0,
    }
    p50 = histogram_quantile(hist, 'h', 0.50)
    assert abs(p50 - 50.0 / 90.0) < 1e-9, p50
    p95 = histogram_quantile(hist, 'h', 0.95)
    assert abs(p95 - (1.0 + 3.0 * 5.0 / 8.0)) < 1e-9, p95
    assert histogram_quantile(hist, 'h', 0.99) == 4.0
    assert histogram_quantile(hist, 'missing', 0.99) is None
    assert histogram_quantile({'h_bucket{le="+Inf"}': 0.0}, 'h', 0.5) is None
    # Per-worker shards sum before estimating.
    sharded = {
        'h_bucket{worker="0",le="1"}': 40.0,
        'h_bucket{worker="0",le="+Inf"}': 50.0,
        'h_bucket{worker="1",le="1"}': 50.0,
        'h_bucket{worker="1",le="+Inf"}': 50.0,
    }
    assert abs(histogram_quantile(sharded, 'h', 0.5) - 50.0 / 90.0) < 1e-9

    assert parse_quantile_spec('p99:lookup_accesses:10') == \
        (0.99, 'lookup_accesses', 10.0)
    for bad in ('p99:only_two', '99:m:5', 'p0:m:5', 'p100:m:5'):
        try:
            parse_quantile_spec(bad)
        except ValueError:
            pass
        else:
            raise AssertionError('accepted bad spec %r' % bad)

    # Absolute ceilings: at/under the limit passes, over fails, no match
    # fails, colons inside the regex survive (split is on the last one).
    snap = {'steady_allocs': 0.0, 'imbalance': 1.31, 'other': 9.0}
    rep, reg = max_gate(snap, ['steady_allocs:0'])
    assert reg == [] and len(rep) == 1, (rep, reg)
    _, reg = max_gate(snap, ['imbalance:1.25'])
    assert len(reg) == 1 and 'imbalance' in reg[0], reg
    rep, reg = max_gate(snap, ['imbalance:1.6', 'other:10'])
    assert reg == [] and len(rep) == 2, (rep, reg)
    _, reg = max_gate(snap, ['no_such_series:5'])
    assert len(reg) == 1 and 'no series' in reg[0], reg
    rep, reg = max_gate({'h_bucket{le="1"}': 2.0}, [r'le="1":3'])
    assert reg == [] and len(rep) == 1, (rep, reg)
    assert parse_max_spec('a:b:3.5') == ('a:b', 3.5)
    for bad in ('nocolon', ':5', 'x:notanum'):
        try:
            parse_max_spec(bad)
        except ValueError:
            pass
        else:
            raise AssertionError('accepted bad --max spec %r' % bad)

    hist_worse = dict(hist)
    hist_worse['h_bucket{le="1"}'] = 40.0  # tail mass doubled at p50's level
    rep, reg = quantile_gate(hist, hist_worse, ['p50:h:10'])
    assert len(reg) == 1 and 'p50(h)' in reg[0], (rep, reg)
    rep, reg = quantile_gate(hist, hist, ['p50:h:10', 'p99:h:0'])
    assert reg == [] and len(rep) == 2, (rep, reg)
    _, reg = quantile_gate(hist, hist, ['p50:nope:10'])
    assert len(reg) == 1 and 'missing histogram' in reg[0], reg

    try:
        parse('!!! not a metric')
    except ValueError:
        pass
    else:
        raise AssertionError('parse accepted garbage')
    print('metrics_diff.py: self-test OK')
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        description='Diff two Prometheus snapshots, exit 1 on regression.')
    ap.add_argument('baseline', nargs='?')
    ap.add_argument('current', nargs='?')
    ap.add_argument('--threshold', type=float, default=5.0,
                    metavar='PCT', help='regression gate in percent')
    ap.add_argument('--match', default=None, metavar='REGEX',
                    help='only compare series matching this regex')
    ap.add_argument('--direction', choices=('up', 'down', 'both'),
                    default='up', help='which movement is a regression')
    ap.add_argument('--min-base', type=float, default=1.0,
                    help='skip series with |baseline| below this')
    ap.add_argument('--require-nonzero', default=None, metavar='REGEX',
                    help='fail unless the current (or only) snapshot has a '
                         'series matching REGEX with a nonzero value')
    ap.add_argument('--max', action='append', default=[],
                    metavar='SERIES_REGEX:VALUE',
                    help='absolute ceiling: fail when any series matching '
                         'the regex exceeds VALUE in the current (or only) '
                         'snapshot, or when none matches (repeatable)')
    ap.add_argument('--quantile', action='append', default=[],
                    metavar='pNN:METRIC:MAX_PCT',
                    help='gate on a histogram quantile estimate: fail when '
                         'pNN of METRIC regressed more than MAX_PCT percent '
                         'vs the baseline (repeatable)')
    ap.add_argument('--self-test', action='store_true')
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    # Single-snapshot modes: the one positional is the file to check.
    if (args.require_nonzero or args.max) and args.baseline \
            and not args.current:
        args.baseline, args.current = None, args.baseline
    if not args.current:
        ap.error('baseline and current snapshots are required')

    with open(args.current) as f:
        cur = parse(f.read())
    if args.require_nonzero:
        hits, ok = require_nonzero(cur, args.require_nonzero)
        if not ok:
            print('require-nonzero FAILED: no series matching %r with a '
                  'nonzero value (%d matched)'
                  % (args.require_nonzero, len(hits)))
            for key in sorted(hits):
                print('  %-60s %g' % (key, hits[key]))
            return 1
        print('require-nonzero OK: %d series matching %r, nonzero present'
              % (len(hits), args.require_nonzero))
    if args.max:
        try:
            mreport, mregressions = max_gate(cur, args.max)
        except ValueError as e:
            ap.error(str(e))
        for line in mreport:
            print(line)
        if mregressions:
            print('%d series over their --max ceiling:' % len(mregressions))
            for line in mregressions:
                print('  ' + line)
            return 1
    if not args.baseline:
        return 0

    with open(args.baseline) as f:
        base = parse(f.read())
    report, regressions = diff(base, cur, args.threshold, args.direction,
                               args.min_base, args.match)
    if args.quantile:
        try:
            qreport, qregressions = quantile_gate(base, cur, args.quantile)
        except ValueError as e:
            ap.error(str(e))
        report += qreport
        regressions += qregressions
    for line in report:
        print(line)
    if regressions:
        print('\n%d series regressed beyond %.1f%% (%s):'
              % (len(regressions), args.threshold, args.direction))
        for line in regressions:
            print('  ' + line)
        return 1
    print('metrics_diff: no regression beyond %.1f%% across %d series'
          % (args.threshold, len(set(base) & set(cur))))
    return 0


if __name__ == '__main__':
    sys.exit(main(sys.argv[1:]))
