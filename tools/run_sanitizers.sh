#!/usr/bin/env bash
# Builds the tree once per requested sanitizer and runs the sanitizer-relevant
# test slice under it. Generalizes the original TSan driver to the full
# matrix:
#
#   thread     data races in src/pipeline/ (SPSC rings, shard-owned
#              CluePorts, counter merges)
#   address    heap/stack misuse anywhere the validators or the data plane
#              chase pointers (trie vertices, Patricia anchors, clue-table
#              probe chains)
#   undefined  UB in the bit arithmetic the whole paper runs on (shifts,
#              overflow) and in the invariant checkers themselves
#
# Usage: tools/run_sanitizers.sh [sanitizer ...] [-- extra ctest -R regex]
#   tools/run_sanitizers.sh                    # full matrix, default filter
#   tools/run_sanitizers.sh thread            # one sanitizer
#   tools/run_sanitizers.sh address -- Check  # one sanitizer, custom filter
set -euo pipefail

cd "$(dirname "$0")/.."

# Concurrent suites plus the invariant-check suites (Check*): the validators
# walk every structure they were written against, which is exactly the
# pointer-chasing ASan/UBSan should watch. Obs* covers the telemetry layer
# (src/obs/) — its sharded-counter test hammers one Counter from 8 threads,
# which is the TSan proof that the relaxed-atomic cell design is race-free.
# Versioned*/Churn* cover the epoch-versioned swap scheme
# (src/rib/versioned_tables.h): ChurnPipeline races a RouteUpdater thread
# against 4 forwarding workers over 1000+ publishes, the TSan proof of the
# grace-period/reclamation protocol. Sim*/Shrink/CorpusReplay cover the
# scenario simulator (src/sim/, DESIGN.md §8): the differential sweeps chase
# every engine's pointers over generated tables with fault injection
# (ASan/UBSan), and SimChurn (matched by Churn) re-proves the versioned-swap
# protocol under TSan with scenario-driven deltas.
# Flight/Span/Trace cover the tracing + flight-recorder layer (DESIGN.md
# §11): FlightRecorder's concurrent reader/writer test is the TSan proof of
# the single-writer release-publish ring. Topo*/RouteUpdater cover the
# multi-router harness (DESIGN.md §12): every (router, port) stack runs a
# live RouteUpdater thread against resolver pins, and the RouteUpdater
# ordering test races two producers into one publication queue.
DEFAULT_FILTER="SpscRing|Pipeline|LookupBatch|DistributedLookup|RngForThread|AccessCounter|Check|Obs|Versioned|Churn|Sim(Generator|Faults|Corpus|Differential)|Shrink|CorpusReplay|Flight|Span|Trace|Topo|RouteUpdater"

SANITIZERS=()
FILTER="$DEFAULT_FILTER"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --)
      shift
      FILTER="${1:?-- requires a ctest regex}"
      shift
      ;;
    thread | address | undefined)
      SANITIZERS+=("$1")
      shift
      ;;
    *)
      echo "unknown sanitizer '$1' (expected: thread, address, undefined)" >&2
      exit 2
      ;;
  esac
done
if [[ ${#SANITIZERS[@]} -eq 0 ]]; then
  SANITIZERS=(thread address undefined)
fi

# Collect every report instead of aborting on the first.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=0 history_size=4}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1 halt_on_error=0}"

for SAN in "${SANITIZERS[@]}"; do
  BUILD_DIR="build-${SAN}"
  echo "=== ${SAN} sanitizer ==="
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCLUERT_SANITIZE="$SAN"
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target cluert_tests
  # The model-checker suite (tests/mc_test.cc) runs under ASan — its fiber
  # switches carry the start/finish_switch_fiber annotations — and under
  # UBSan. It self-skips under TSan (no TSan fiber-API support), so adding
  # it to the default filter is safe for the whole matrix.
  RUN_FILTER="$FILTER"
  if [[ "$FILTER" == "$DEFAULT_FILTER" ]]; then
    RUN_FILTER="${FILTER}|^Mc\."
  fi
  ctest --test-dir "$BUILD_DIR" -R "$RUN_FILTER" --output-on-failure
  echo "${SAN} sanitizer run clean for filter: $FILTER"
done
echo "Sanitizer matrix clean: ${SANITIZERS[*]}"
