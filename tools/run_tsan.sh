#!/usr/bin/env bash
# Back-compat wrapper: the TSan slice of tools/run_sanitizers.sh.
#
# Usage: tools/run_tsan.sh [extra ctest -R regex]
set -euo pipefail
cd "$(dirname "$0")"
if [[ $# -gt 0 ]]; then
  exec ./run_sanitizers.sh thread -- "$1"
fi
exec ./run_sanitizers.sh thread
