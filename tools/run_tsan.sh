#!/usr/bin/env bash
# Builds the tree with -DCLUERT_SANITIZE=thread and runs the concurrent
# tests (the pipeline suite and the distributed-lookup suite it drives)
# under ThreadSanitizer. Part of tier-1 verification for src/pipeline/: any
# data race in the SPSC rings, the shard-owned CluePorts, or the counter
# merge shows up here, not in production.
#
# Usage: tools/run_tsan.sh [extra ctest -R regex]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-tsan
FILTER="${1:-SpscRing|Pipeline|LookupBatch|DistributedLookup|RngForThread|AccessCounter}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCLUERT_SANITIZE=thread
cmake --build "$BUILD_DIR" -j"$(nproc)" --target cluert_tests

# Second-guess TSan's default of aborting on the first report: collect all.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=0 history_size=4}"

ctest --test-dir "$BUILD_DIR" -R "$FILTER" --output-on-failure
echo "TSan run clean for filter: $FILTER"
