#!/usr/bin/env python3
"""Merge per-router /trace JSONL span streams into one timeline.

Each cluertd daemon serves its sampled PacketSpans as JSONL on GET /trace
(obs::spansToJsonl — one object per hop a traced packet took). This tool
joins those per-router streams on the 128-bit trace_id and emits a
chrome://tracing JSON with one process row per router (worker threads as
tid rows) plus per-hop and end-to-end latency percentiles, so a three-hop
topology's worth of scrapes becomes one inspectable picture.

All timestamps are CLOCK_MONOTONIC nanoseconds. That clock is system-wide
on Linux, so spans from daemons on the same host (the topo_run.sh loopback
topologies) share a timebase and cross-hop deltas are real; merging scrapes
from different hosts gives per-hop numbers that are still valid but
end-to-end spans that are not.

Usage:
  tools/trace_merge.py hopA.jsonl hopB.jsonl hopC.jsonl \\
      [--out merged.json]        chrome://tracing output (default stdout)
      [--require-hops N]         exit 1 unless >=1 trace is complete: hops
                                 0..N-1 all present, per-hop and cross-hop
                                 timestamps monotone
      [--quiet]                  suppress the stats summary on stderr
  tools/trace_merge.py --self-test

A trace is *complete* for --require-hops N when it has exactly one span per
hop 0..N-1 and time flows forward: rx <= decode <= lookup_start <=
lookup_end (<= tx when forwarded) inside each hop, and hop k's tx precedes
hop k+1's rx. Complete traces feed the latency stats; partial ones still
render (gaps are visible in the timeline, which is the point).
"""

import argparse
import json
import sys


def load_spans(texts):
    """Parses JSONL documents -> flat span list. Raises ValueError."""
    spans = []
    for doc_no, text in enumerate(texts):
        for line_no, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                s = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError('input %d line %d: %s'
                                 % (doc_no, line_no, e)) from e
            for field in ('trace_id', 'hop', 'router', 'rx_ns',
                          'lookup_start_ns', 'lookup_end_ns', 'tx_ns',
                          'verdict'):
                if field not in s:
                    raise ValueError('input %d line %d: span missing %r'
                                     % (doc_no, line_no, field))
            spans.append(s)
    return spans


def group_traces(spans):
    """-> {trace_id: [spans sorted by hop]}"""
    traces = {}
    for s in spans:
        traces.setdefault(s['trace_id'], []).append(s)
    for tid in traces:
        traces[tid].sort(key=lambda s: s['hop'])
    return traces


def span_end_ns(s):
    """When this hop was done with the packet: tx if it went out, else the
    end of the lookup that settled its fate."""
    return s['tx_ns'] if s['tx_ns'] else s['lookup_end_ns']


def hop_monotone(s):
    decode = s.get('decode_ns', s['rx_ns'])
    if not (s['rx_ns'] <= decode <= s['lookup_start_ns']
            <= s['lookup_end_ns']):
        return False
    return not s['tx_ns'] or s['lookup_end_ns'] <= s['tx_ns']


def is_complete(spans, require_hops):
    """True iff `spans` (sorted by hop) covers hops 0..require_hops-1 once
    each with monotone time inside and across hops."""
    if [s['hop'] for s in spans] != list(range(require_hops)):
        return False
    if not all(hop_monotone(s) for s in spans):
        return False
    for prev, cur in zip(spans, spans[1:]):
        if not prev['tx_ns'] or prev['tx_ns'] > cur['rx_ns']:
            return False
    return True


def percentile(values, q):
    """Nearest-rank percentile (q in 0..100) of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(len(ordered) * q / 100.0 + 0.5) - 1))
    return ordered[rank]


def compute_stats(traces, require_hops):
    """-> stats dict over the complete traces (per-hop + end-to-end p50/99)."""
    complete = {tid: spans for tid, spans in traces.items()
                if is_complete(spans, require_hops)}
    per_hop = {h: [] for h in range(require_hops)}
    end_to_end = []
    for spans in complete.values():
        for s in spans:
            per_hop[s['hop']].append(span_end_ns(s) - s['rx_ns'])
        end_to_end.append(span_end_ns(spans[-1]) - spans[0]['rx_ns'])
    stats = {
        'traces_total': len(traces),
        'traces_complete': len(complete),
        'require_hops': require_hops,
        'per_hop': {},
        'end_to_end': {},
    }
    for h, lat in per_hop.items():
        if lat:
            stats['per_hop'][str(h)] = {
                'count': len(lat),
                'p50_ns': percentile(lat, 50),
                'p99_ns': percentile(lat, 99),
            }
    if end_to_end:
        stats['end_to_end'] = {
            'count': len(end_to_end),
            'p50_ns': percentile(end_to_end, 50),
            'p99_ns': percentile(end_to_end, 99),
        }
    return stats


def to_chrome(traces, stats):
    """chrome://tracing object: one pid row per router, one X event per hop
    span (lookup as a nested slice), flow arrows stitching the hops of each
    trace together."""
    routers = {}  # router name -> pid
    events = []
    epoch = min((s['rx_ns'] for spans in traces.values() for s in spans),
                default=0)

    def pid_for(s):
        name = s['router']
        if name not in routers:
            pid = len(routers) + 1
            routers[name] = pid
            events.append({'ph': 'M', 'pid': pid, 'tid': 0,
                           'name': 'process_name',
                           'args': {'name': name}})
        return routers[name]

    def us(ns):
        return (ns - epoch) / 1000.0

    for tid_str, spans in sorted(traces.items()):
        for s in spans:
            pid = pid_for(s)
            tid = s.get('worker', 0)
            end = span_end_ns(s)
            args = {k: s[k] for k in ('trace_id', 'hop', 'dest', 'clue_len',
                                      'outcome', 'claim1_skip',
                                      'search_failed', 'verdict',
                                      'total_accesses', 'accesses')
                    if k in s}
            events.append({
                'ph': 'X', 'pid': pid, 'tid': tid,
                'name': 'hop%d case=%s %s' % (s['hop'],
                                              s.get('outcome', '?'),
                                              s['verdict']),
                'ts': us(s['rx_ns']),
                'dur': max((end - s['rx_ns']) / 1000.0, 0.001),
                'args': args,
            })
            events.append({
                'ph': 'X', 'pid': pid, 'tid': tid,
                'name': 'lookup',
                'ts': us(s['lookup_start_ns']),
                'dur': max((s['lookup_end_ns'] - s['lookup_start_ns'])
                           / 1000.0, 0.001),
                'args': {'outcome': s.get('outcome'),
                         'total_accesses': s.get('total_accesses')},
            })
        for prev, cur in zip(spans, spans[1:]):
            if not prev['tx_ns']:
                continue
            flow = {'cat': 'trace', 'name': 'fwd', 'id': tid_str}
            events.append(dict(flow, ph='s', pid=pid_for(prev),
                               tid=prev.get('worker', 0),
                               ts=us(prev['tx_ns'])))
            events.append(dict(flow, ph='f', bp='e', pid=pid_for(cur),
                               tid=cur.get('worker', 0),
                               ts=us(cur['rx_ns'])))
    return {'displayTimeUnit': 'ms', 'traceEvents': events, 'stats': stats}


def synth_span(tid, hop, router, t0, forwarded=True):
    return {
        'trace_id': tid, 'hop': hop, 'router': router,
        'router_id': hop + 1, 'worker': 0, 'src_id': hop, 'dest': '10.0.0.1',
        'origin_ns': 1000, 'rx_ns': t0, 'decode_ns': t0 + 10,
        'lookup_start_ns': t0 + 20, 'lookup_end_ns': t0 + 50,
        'tx_ns': t0 + 80 if forwarded else 0,
        'clue_len': 8 if hop else -1, 'outcome': '2' if hop else 'no_clue',
        'claim1_skip': False, 'search_failed': False,
        'verdict': 'forwarded' if forwarded else 'delivered',
        'accesses': {'clue_table': 2}, 'total_accesses': 2,
    }


def self_test():
    tid = '00' * 16
    good = [synth_span(tid, 0, 'hopA', 1000),
            synth_span(tid, 1, 'hopB', 1200),
            synth_span(tid, 2, 'hopC', 1400, forwarded=False)]
    jsonl = [''.join(json.dumps(s) + '\n' for s in good[i:i + 1])
             for i in range(3)]
    traces = group_traces(load_spans(jsonl))
    assert list(traces) == [tid] and len(traces[tid]) == 3
    assert is_complete(traces[tid], 3)
    assert not is_complete(traces[tid], 2)  # extra hop != complete 2-hop

    stats = compute_stats(traces, 3)
    assert stats['traces_complete'] == 1, stats
    assert stats['per_hop']['0']['p50_ns'] == 80   # rx -> tx
    assert stats['per_hop']['2']['p50_ns'] == 50   # delivered: rx -> lookup
    assert stats['end_to_end']['p50_ns'] == 1450 - 1000

    # A hop whose rx precedes the upstream tx is clock nonsense -> partial.
    bad = [dict(s) for s in good]
    bad[1]['rx_ns'] = 1050  # before hop0's tx at 1080
    assert not is_complete(sorted(bad, key=lambda s: s['hop']), 3)

    # Missing middle hop -> partial, but still renders.
    partial = {tid: [good[0], good[2]]}
    assert compute_stats(partial, 3)['traces_complete'] == 0
    doc = to_chrome(partial, {})
    assert any(e.get('name', '').startswith('hop2') for e in
               doc['traceEvents'])

    doc = to_chrome(traces, stats)
    names = [e['args']['name'] for e in doc['traceEvents']
             if e['ph'] == 'M']
    assert names == ['hopA', 'hopB', 'hopC'], names
    assert sum(1 for e in doc['traceEvents'] if e['ph'] == 's') == 2
    json.dumps(doc)  # must serialize

    assert percentile([1, 2, 3, 4], 50) == 2
    assert percentile([5], 99) == 5

    try:
        load_spans(['{"trace_id": "x"}\n'])
    except ValueError:
        pass
    else:
        raise AssertionError('accepted span with missing fields')
    print('trace_merge.py: self-test OK')
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        description='Merge /trace JSONL scrapes into a chrome://tracing '
                    'timeline with per-hop latency stats.')
    ap.add_argument('inputs', nargs='*', help='per-router JSONL files')
    ap.add_argument('--out', default=None,
                    help='write the chrome trace here (default stdout)')
    ap.add_argument('--require-hops', type=int, default=0, metavar='N',
                    help='exit 1 unless >=1 complete N-hop trace merged')
    ap.add_argument('--quiet', action='store_true')
    ap.add_argument('--self-test', action='store_true')
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.inputs:
        ap.error('at least one JSONL input is required')

    texts = []
    for path in args.inputs:
        with open(path) as f:
            texts.append(f.read())
    traces = group_traces(load_spans(texts))
    hops = args.require_hops or max(
        (len(spans) for spans in traces.values()), default=0)
    stats = compute_stats(traces, hops) if hops else {
        'traces_total': 0, 'traces_complete': 0, 'require_hops': 0,
        'per_hop': {}, 'end_to_end': {}}
    doc = to_chrome(traces, stats)

    rendered = json.dumps(doc, indent=1)
    if args.out:
        with open(args.out, 'w') as f:
            f.write(rendered + '\n')
    else:
        print(rendered)
    if not args.quiet:
        print('trace_merge: %d trace(s), %d complete at %d hop(s)'
              % (stats['traces_total'], stats['traces_complete'], hops),
              file=sys.stderr)
        for h, d in sorted(stats['per_hop'].items()):
            print('  hop %s: n=%d p50=%dns p99=%dns'
                  % (h, d['count'], d['p50_ns'], d['p99_ns']),
                  file=sys.stderr)
        if stats['end_to_end']:
            e = stats['end_to_end']
            print('  end-to-end: n=%d p50=%dns p99=%dns'
                  % (e['count'], e['p50_ns'], e['p99_ns']), file=sys.stderr)

    if args.require_hops and stats['traces_complete'] == 0:
        print('trace_merge FAILED: no complete %d-hop trace '
              '(%d trace(s) seen)' % (args.require_hops,
                                      stats['traces_total']),
              file=sys.stderr)
        return 1
    return 0


if __name__ == '__main__':
    sys.exit(main(sys.argv[1:]))
