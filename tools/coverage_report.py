#!/usr/bin/env python3
"""Aggregate gcov JSON output into a line-coverage report.

Usage:
  coverage_report.py --build <build-dir> [--root <repo-root>]
                     [--check <percent>] [--per-file]

Walks the build directory for .gcda counter files, runs `gcov --json-format`
on each, and merges execution counts per (source file, line) — an object
compiled into several targets counts as covered if ANY run hit the line.
Only files under <root>/src are reported (tests and benches measure the
product, they are not the product).

--check exits 1 when total line coverage is below the threshold; this is
ci.sh's gate. The threshold is intentionally set below the measured value
so the gate catches regressions, not noise.
"""

import argparse
import gzip
import json
import os
import subprocess
import sys
import tempfile
from collections import defaultdict


def find_gcda(build_dir):
    for dirpath, _dirnames, filenames in os.walk(build_dir):
        for name in filenames:
            if name.endswith(".gcda"):
                # Absolute: gcov runs from a scratch cwd.
                yield os.path.abspath(os.path.join(dirpath, name))


def run_gcov(gcda_files, scratch):
    """Runs gcov in JSON mode; yields parsed JSON documents."""
    # Batch to keep command lines bounded.
    batch = 128
    for i in range(0, len(gcda_files), batch):
        chunk = gcda_files[i : i + batch]
        subprocess.run(
            ["gcov", "--json-format"] + chunk,
            cwd=scratch,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            check=False,
        )
        # gcov writes one .gcov.json.gz per input in the cwd.
        for name in os.listdir(scratch):
            if not name.endswith(".gcov.json.gz"):
                continue
            path = os.path.join(scratch, name)
            try:
                with gzip.open(path, "rt") as fh:
                    yield json.load(fh)
            except (OSError, json.JSONDecodeError):
                pass
            os.remove(path)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", required=True)
    ap.add_argument("--root", default=os.getcwd())
    ap.add_argument("--check", type=float, default=None)
    ap.add_argument("--per-file", action="store_true")
    args = ap.parse_args()

    root = os.path.realpath(args.root)
    src_root = os.path.join(root, "src")

    gcda = sorted(find_gcda(args.build))
    if not gcda:
        print(f"no .gcda files under {args.build}; "
              "build with -DCLUERT_COVERAGE=ON and run the tests first",
              file=sys.stderr)
        return 2

    # hits[file][line] = max count seen across objects.
    hits = defaultdict(lambda: defaultdict(int))
    with tempfile.TemporaryDirectory() as scratch:
        for doc in run_gcov(gcda, scratch):
            for f in doc.get("files", []):
                path = os.path.realpath(
                    os.path.join(doc.get("current_working_directory", ""),
                                 f.get("file", "")))
                if not path.startswith(src_root + os.sep):
                    continue
                rel = os.path.relpath(path, root)
                for line in f.get("lines", []):
                    n = line.get("line_number")
                    c = line.get("count", 0)
                    if n is None:
                        continue
                    hits[rel][n] = max(hits[rel][n], c)

    if not hits:
        print("gcov produced no data for files under src/", file=sys.stderr)
        return 2

    per_dir = defaultdict(lambda: [0, 0])  # dir -> [covered, total]
    total_covered = 0
    total_lines = 0
    rows = []
    for rel in sorted(hits):
        lines = hits[rel]
        covered = sum(1 for c in lines.values() if c > 0)
        total = len(lines)
        rows.append((rel, covered, total))
        d = os.path.dirname(rel)
        per_dir[d][0] += covered
        per_dir[d][1] += total
        total_covered += covered
        total_lines += total

    if args.per_file:
        for rel, covered, total in rows:
            print(f"{100.0 * covered / total:6.1f}%  {covered:5d}/{total:<5d}  {rel}")
        print()
    for d in sorted(per_dir):
        covered, total = per_dir[d]
        print(f"{100.0 * covered / total:6.1f}%  {covered:5d}/{total:<5d}  {d}/")
    pct = 100.0 * total_covered / total_lines
    print(f"{pct:6.1f}%  {total_covered:5d}/{total_lines:<5d}  TOTAL")

    if args.check is not None and pct < args.check:
        print(f"FAIL: line coverage {pct:.1f}% is below the "
              f"{args.check:.1f}% gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
