// sim_run — drive the deterministic scenario simulator (DESIGN.md §8).
//
// Usage:
//   sim_run sweep [options]
//       Generate seed-numbered scenarios and run each through the full
//       differential matrix ({methods} x {Simple,Advance} x {hash,indexed}
//       against the brute-force oracle). Exits nonzero on any mismatch or
//       invariant violation. On failure, --shrink minimises the scenario
//       and --save <dir> persists it as a .scn corpus file.
//   sim_run replay <file-or-dir>...
//       Replay corpus files (dispatching ipv4/ipv6 by header) through the
//       same matrix. Exits nonzero if any replay fails — the red test a
//       shrunk repro stays until its bug is fixed.
//   sim_run show <file>
//       Parse a corpus file and print its shape.
//   sim_run gen <seed> <ipv4|ipv6> <out.scn> [packets]
//       Materialise one generated scenario as a corpus file (seed corpus
//       entries are checked in this way, so replays never depend on the
//       generator staying bit-identical).
//   sim_run topo-gen <seed> <out.scn>
//       Materialise one generated *topology* scenario (cluert-topo header;
//       replay and show dispatch on it like any other corpus file).
//   sim_run topo-shrink <in.scn> <out.scn> --require <predicate>
//       ddmin-shrink a topology scenario while it keeps satisfying the
//       named predicate: `stale-convergence` (stale clues classified during
//       a convergence window, Advance mode, strict-clean) or
//       `withdraw-race` (a withdraw whose transient drops or stale-clues
//       traffic, strict-clean).
//
// Sweep options:
//   --seeds N        number of seeds to run            (default 20)
//   --seed-base B    first seed                        (default 1)
//   --packets N      packets per scenario              (default 600)
//   --family F       ipv4 | ipv6 | both                (default both)
//   --no-faults      genuine clues only
//   --no-churn       static tables, no mid-stream swaps
//   --no-validate    skip the src/check/ validators at publishes (fast
//                    mode for million-packet sweeps)
//   --shrink         minimise the first failing scenario
//   --save DIR       write the (shrunk) failing scenario under DIR
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/sim.h"
#include "topo/harness.h"
#include "topo/scenario.h"

namespace {

using namespace cluert;

struct SweepArgs {
  std::size_t seeds = 20;
  std::uint64_t seed_base = 1;
  std::size_t packets = 600;
  bool ipv4 = true;
  bool ipv6 = true;
  bool faults = true;
  bool churn = true;
  bool validate = true;
  bool shrink = false;
  std::string save_dir;
};

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sim_run sweep [--seeds N] [--seed-base B] [--packets N]\n"
               "                [--family ipv4|ipv6|both] [--no-faults]\n"
               "                [--no-churn] [--no-validate] [--shrink]\n"
               "                [--save DIR]\n"
               "  sim_run replay <file-or-dir>...\n"
               "  sim_run show <file>\n"
               "  sim_run gen <seed> <ipv4|ipv6> <out.scn> [packets]\n"
               "  sim_run topo-gen <seed> <out.scn>\n"
               "  sim_run topo-shrink <in.scn> <out.scn> --require "
               "stale-convergence|withdraw-race\n");
  return 2;
}

struct Totals {
  std::uint64_t generated = 0;
  std::uint64_t processed = 0;
  std::uint64_t checked = 0;
  std::uint64_t faults = 0;
  std::uint64_t publishes = 0;

  void add(const sim::RunResult& r) {
    generated += r.generated_packets;
    processed += r.packets_processed;
    checked += r.strict_checked;
    faults += r.faults_injected;
    publishes += r.publishes;
  }

  void print() const {
    std::printf(
        "total: %llu generated packets, %llu processed, %llu oracle-checked, "
        "%llu faults, %llu publishes\n",
        static_cast<unsigned long long>(generated),
        static_cast<unsigned long long>(processed),
        static_cast<unsigned long long>(checked),
        static_cast<unsigned long long>(faults),
        static_cast<unsigned long long>(publishes));
  }
};

void printFailure(const char* what, const sim::RunResult& r) {
  std::printf("FAIL %s: %s\n", what, r.summary().c_str());
  for (const auto& m : r.mismatches) {
    std::printf("  mismatch pkt %zu %s: %s\n", m.packet,
                sim::configName(m.config).c_str(), m.detail.c_str());
  }
  if (!r.check_report.ok()) {
    std::printf("%s", r.check_report.toString().c_str());
  }
}

// Runs one seed for one address family; on failure optionally shrinks and
// saves the repro. Returns true when the seed is clean.
template <typename A>
bool runSeed(std::uint64_t seed, const SweepArgs& args, Totals& totals) {
  sim::GenOptions gen;
  gen.packets = args.packets;
  gen.faults = args.faults;
  gen.churn = args.churn;
  sim::RunOptions<A> ropt;
  ropt.validate_publishes = args.validate;

  const auto scenario = sim::generateScenario<A>(seed, gen);
  const auto result = sim::runScenario(scenario, ropt);
  totals.add(result);
  if (result.ok()) return true;

  const std::string tag = std::string(sim::detail::familyTag<A>()) + " seed " +
                          std::to_string(seed);
  printFailure(tag.c_str(), result);

  sim::Scenario<A> repro = scenario;
  if (args.shrink) {
    const sim::FailPredicate<A> fails = [&](const sim::Scenario<A>& c) {
      return !sim::runScenario(c, ropt).ok();
    };
    sim::ShrinkStats stats;
    repro = sim::shrinkScenario(scenario, fails, {}, &stats);
    std::printf(
        "shrunk to %zu sender / %zu receiver / %zu churn / %zu packets "
        "(%zu evals, %zu rounds)\n",
        repro.sender.size(), repro.receiver.size(), repro.churn.size(),
        repro.packets.size(), stats.evals, stats.rounds);
  }
  if (!args.save_dir.empty()) {
    const std::string path = args.save_dir + "/repro-" +
                             std::string(sim::detail::familyTag<A>()) +
                             "-seed" + std::to_string(seed) + ".scn";
    if (sim::writeFile(path, sim::serializeScenario(repro))) {
      std::printf("saved repro to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
    }
  }
  return false;
}

int cmdSweep(int argc, char** argv) {
  SweepArgs args;
  for (int i = 2; i < argc; ++i) {
    const std::string_view a = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--seeds") {
      const char* v = value();
      if (!v) return usage();
      args.seeds = std::strtoul(v, nullptr, 10);
    } else if (a == "--seed-base") {
      const char* v = value();
      if (!v) return usage();
      args.seed_base = std::strtoull(v, nullptr, 10);
    } else if (a == "--packets") {
      const char* v = value();
      if (!v) return usage();
      args.packets = std::strtoul(v, nullptr, 10);
    } else if (a == "--family") {
      const char* v = value();
      if (!v) return usage();
      args.ipv4 = std::strcmp(v, "ipv6") != 0;
      args.ipv6 = std::strcmp(v, "ipv4") != 0;
    } else if (a == "--no-faults") {
      args.faults = false;
    } else if (a == "--no-churn") {
      args.churn = false;
    } else if (a == "--no-validate") {
      args.validate = false;
    } else if (a == "--shrink") {
      args.shrink = true;
    } else if (a == "--save") {
      const char* v = value();
      if (!v) return usage();
      args.save_dir = v;
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return usage();
    }
  }

  Totals totals;
  std::size_t bad = 0;
  for (std::uint64_t k = 0; k < args.seeds; ++k) {
    const std::uint64_t seed = args.seed_base + k;
    if (args.ipv4 && !runSeed<ip::Ip4Addr>(seed, args, totals)) ++bad;
    if (args.ipv6 && !runSeed<ip::Ip6Addr>(seed, args, totals)) ++bad;
  }
  totals.print();
  if (bad != 0) {
    std::printf("%zu failing seed runs\n", bad);
    return 1;
  }
  std::printf("all %zu seeds clean\n", args.seeds);
  return 0;
}

template <typename A>
bool replayOne(const std::string& path, const std::string& text,
               Totals& totals) {
  const auto scenario = sim::parseScenario<A>(text);
  if (!scenario) {
    std::fprintf(stderr, "malformed scenario file %s\n", path.c_str());
    return false;
  }
  const auto result = sim::runScenario(*scenario, sim::RunOptions<A>{});
  totals.add(result);
  if (result.ok()) {
    std::printf("ok   %s (%s)\n", path.c_str(), result.summary().c_str());
    return true;
  }
  printFailure(path.c_str(), result);
  return false;
}

bool replayTopo(const std::string& path, const std::string& text) {
  const auto scenario = topo::parseTopoScenario(text);
  if (!scenario) {
    std::fprintf(stderr, "malformed topology scenario file %s\n", path.c_str());
    return false;
  }
  const topo::HarnessStats stats = topo::runTopoScenario(*scenario);
  if (stats.ok()) {
    std::printf("ok   %s (%s)\n", path.c_str(), stats.summary().c_str());
    return true;
  }
  std::printf("FAIL %s: %s\n", path.c_str(), stats.summary().c_str());
  if (!stats.first_mismatch.empty()) {
    std::printf("  %s\n", stats.first_mismatch.c_str());
  }
  if (!stats.check_report.ok()) {
    std::printf("%s", stats.check_report.toString().c_str());
  }
  return false;
}

int cmdReplay(int argc, char** argv) {
  if (argc < 3) return usage();
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const auto listed = sim::listCorpusFiles(argv[i]);
    if (listed.empty()) {
      files.emplace_back(argv[i]);  // not a directory: a single file
    } else {
      files.insert(files.end(), listed.begin(), listed.end());
    }
  }
  Totals totals;
  std::size_t bad = 0;
  for (const auto& path : files) {
    const auto text = sim::readFile(path);
    if (!text) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      ++bad;
      continue;
    }
    const auto family = sim::scenarioFamily(*text);
    bool ok = false;
    if (family == "ipv4") {
      ok = replayOne<ip::Ip4Addr>(path, *text, totals);
    } else if (family == "ipv6") {
      ok = replayOne<ip::Ip6Addr>(path, *text, totals);
    } else if (family == "topo4") {
      ok = replayTopo(path, *text);
    } else {
      std::fprintf(stderr, "unknown scenario family in %s\n", path.c_str());
    }
    if (!ok) ++bad;
  }
  totals.print();
  if (bad != 0) {
    std::printf("%zu failing replays\n", bad);
    return 1;
  }
  std::printf("all %zu corpus files clean\n", files.size());
  return 0;
}

template <typename A>
void showScenario(const sim::Scenario<A>& s) {
  std::printf(
      "seed %llu: sender=%zu receiver=%zu churn=%zu packets=%zu faults=%zu\n",
      static_cast<unsigned long long>(s.seed), s.sender.size(),
      s.receiver.size(), s.churn.size(), s.packets.size(), s.faultCount());
  for (const auto& step : s.churn) {
    std::printf("  churn @%zu %s: -%zu +%zu ~%zu\n", step.after_packet,
                step.neighbor ? "neighbor" : "local", step.delta.removed.size(),
                step.delta.added.size(), step.delta.rerouted.size());
  }
}

int cmdShow(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto text = sim::readFile(argv[2]);
  if (!text) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 1;
  }
  const auto family = sim::scenarioFamily(*text);
  if (family == "ipv4") {
    const auto s = sim::parseScenario<ip::Ip4Addr>(*text);
    if (!s) {
      std::fprintf(stderr, "malformed scenario file %s\n", argv[2]);
      return 1;
    }
    showScenario(*s);
  } else if (family == "ipv6") {
    const auto s = sim::parseScenario<ip::Ip6Addr>(*text);
    if (!s) {
      std::fprintf(stderr, "malformed scenario file %s\n", argv[2]);
      return 1;
    }
    showScenario(*s);
  } else if (family == "topo4") {
    const auto s = topo::parseTopoScenario(*text);
    if (!s) {
      std::fprintf(stderr, "malformed topology scenario file %s\n", argv[2]);
      return 1;
    }
    std::printf(
        "topo seed %llu: %s n=%zu %s/%s ticks=%d originate=%zu events=%zu "
        "packets=%zu\n",
        static_cast<unsigned long long>(s->seed),
        std::string(topo::shapeName(s->shape)).c_str(), s->nodes,
        std::string(lookup::methodName(s->method)).c_str(),
        std::string(lookup::clueModeName(s->mode)).c_str(), s->ticks,
        s->originate.size(), s->events.size(), s->packets.size());
    for (const auto& e : s->events) {
      if (e.kind == topo::TopoEventKind::kLinkDown ||
          e.kind == topo::TopoEventKind::kLinkUp) {
        std::printf("  @%d %s %u %u\n", e.tick,
                    std::string(topo::topoEventName(e.kind)).c_str(), e.a,
                    e.b);
      } else {
        std::printf("  @%d %s %u %s\n", e.tick,
                    std::string(topo::topoEventName(e.kind)).c_str(), e.a,
                    e.prefix.toString().c_str());
      }
    }
  } else {
    std::fprintf(stderr, "unknown scenario family in %s\n", argv[2]);
    return 1;
  }
  return 0;
}

template <typename A>
int genOne(std::uint64_t seed, const char* path, std::size_t packets) {
  sim::GenOptions gen;
  gen.packets = packets;
  const auto s = sim::generateScenario<A>(seed, gen);
  if (!sim::writeFile(path, sim::serializeScenario(s))) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::printf("wrote %s: ", path);
  showScenario(s);
  return 0;
}

int cmdGen(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::uint64_t seed = std::strtoull(argv[2], nullptr, 10);
  const std::size_t packets =
      argc > 5 ? std::strtoul(argv[5], nullptr, 10) : 200;
  if (std::strcmp(argv[3], "ipv4") == 0) {
    return genOne<ip::Ip4Addr>(seed, argv[4], packets);
  }
  if (std::strcmp(argv[3], "ipv6") == 0) {
    return genOne<ip::Ip6Addr>(seed, argv[4], packets);
  }
  return usage();
}

int cmdTopoGen(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::uint64_t seed = std::strtoull(argv[2], nullptr, 10);
  const topo::TopoScenario s = topo::generateTopoScenario(seed);
  if (!sim::writeFile(argv[3], topo::serializeTopoScenario(s))) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  const topo::HarnessStats stats = topo::runTopoScenario(s);
  std::printf("wrote %s: %s n=%zu ticks=%d events=%zu packets=%zu\n  %s\n",
              argv[3], std::string(topo::shapeName(s.shape)).c_str(), s.nodes,
              s.ticks, s.events.size(), s.packets.size(),
              stats.summary().c_str());
  return stats.ok() ? 0 : 1;
}

// The named corpus-hunt predicates. Both require a strict-clean run: the
// repros pin down *classified* transients, not oracle failures — the
// CorpusReplay gate keeps replaying them green.
topo::TopoFailPredicate topoPredicate(std::string_view name) {
  if (name == "stale-convergence") {
    return [](const topo::TopoScenario& s) {
      if (s.mode != lookup::ClueMode::kAdvance) return false;
      const topo::HarnessStats st = topo::runTopoScenario(s);
      return st.ok() && st.stale_during_flap > 0;
    };
  }
  if (name == "withdraw-race") {
    return [](const topo::TopoScenario& s) {
      const topo::HarnessStats st = topo::runTopoScenario(s);
      return st.ok() && st.stale_during_withdraw > 0;
    };
  }
  return nullptr;
}

int cmdTopoShrink(int argc, char** argv) {
  if (argc < 6 || std::strcmp(argv[4], "--require") != 0) return usage();
  const auto text = sim::readFile(argv[2]);
  if (!text) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 1;
  }
  const auto scenario = topo::parseTopoScenario(*text);
  if (!scenario) {
    std::fprintf(stderr, "malformed topology scenario file %s\n", argv[2]);
    return 1;
  }
  const topo::TopoFailPredicate fails = topoPredicate(argv[5]);
  if (!fails) {
    std::fprintf(stderr, "unknown predicate %s\n", argv[5]);
    return usage();
  }
  if (!fails(*scenario)) {
    std::fprintf(stderr, "%s does not satisfy predicate %s\n", argv[2],
                 argv[5]);
    return 1;
  }
  sim::ShrinkStats stats;
  const topo::TopoScenario small =
      topo::shrinkTopoScenario(*scenario, fails, {}, &stats);
  if (!sim::writeFile(argv[3], topo::serializeTopoScenario(small))) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  std::printf(
      "shrunk to %zu originate / %zu events / %zu packets / %d ticks "
      "(%zu evals, %zu rounds) -> %s\n",
      small.originate.size(), small.events.size(), small.packets.size(),
      small.ticks, stats.evals, stats.rounds, argv[3]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "sweep") == 0) return cmdSweep(argc, argv);
  if (std::strcmp(argv[1], "replay") == 0) return cmdReplay(argc, argv);
  if (std::strcmp(argv[1], "show") == 0) return cmdShow(argc, argv);
  if (std::strcmp(argv[1], "gen") == 0) return cmdGen(argc, argv);
  if (std::strcmp(argv[1], "topo-gen") == 0) return cmdTopoGen(argc, argv);
  if (std::strcmp(argv[1], "topo-shrink") == 0) {
    return cmdTopoShrink(argc, argv);
  }
  return usage();
}
