// Command-line driver for the in-tree model checker (src/mc/). Runs the
// named harnesses from src/mc/harnesses.h and reports counterexamples as
// replayable schedule strings.
//
//   mc_run --list                  enumerate harnesses
//   mc_run [name...]               explore the named harnesses (default all)
//   mc_run --smoke <ms>            time-boxed sweep over all harnesses; used
//                                  by tools/ci.sh gate 8. Mutant harnesses
//                                  must still produce their violation within
//                                  the budget; correct ones must simply not
//                                  violate (completeness is not required
//                                  under a time budget).
//   mc_run --replay <name> <sched> re-run one schedule with a full trace
//
// Exit status: 0 when every harness behaved as expected (violation iff the
// registry expects one), 1 otherwise.
#include <cstdio>
#include <cstring>
#include <string>

#include "mc/harnesses.h"

namespace {

using cluert::mc::NamedHarness;
using cluert::mc::Options;
using cluert::mc::Result;

const NamedHarness* find(const std::string& name) {
  for (const NamedHarness& h : cluert::mc::harnessRegistry()) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// Returns true when the harness behaved as the registry expects.
bool runOne(const NamedHarness& h, const Options& opt, bool verbose) {
  const Result r = cluert::mc::explore(h.fn, opt);
  const bool ok = r.found_violation == h.expect_violation;
  std::printf("%-32s %-4s %s\n", h.name.c_str(), ok ? "ok" : "FAIL",
              r.summary().c_str());
  if (verbose && r.found_violation) {
    std::printf("--- trace ---\n%s-------------\n", r.violation.trace.c_str());
  }
  if (!ok && !r.found_violation) {
    std::printf("  expected a violation (%s) but none was found\n",
                h.note.c_str());
  }
  if (!ok && r.found_violation) {
    std::printf("  unexpected violation; replay with:\n"
                "    mc_run --replay %s '%s'\n",
                h.name.c_str(), r.violation.schedule.c_str());
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const auto& registry = cluert::mc::harnessRegistry();
  Options opt;
  bool verbose = false;
  std::string replay_name;
  std::string replay_schedule;
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      for (const NamedHarness& h : registry) {
        std::printf("%-32s %s%s\n", h.name.c_str(), h.note.c_str(),
                    h.expect_violation ? " [expects violation]" : "");
      }
      return 0;
    } else if (arg == "--smoke" && i + 1 < argc) {
      opt.time_budget_ms = std::atol(argv[++i]);
    } else if (arg == "--max-executions" && i + 1 < argc) {
      opt.max_executions = std::atol(argv[++i]);
    } else if (arg == "--preemption-bound" && i + 1 < argc) {
      opt.preemption_bound = std::atoi(argv[++i]);
    } else if (arg == "--replay" && i + 2 < argc) {
      replay_name = argv[++i];
      replay_schedule = argv[++i];
    } else if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      names.push_back(arg);
    }
  }

  if (!replay_name.empty()) {
    const NamedHarness* h = find(replay_name);
    if (h == nullptr) {
      std::fprintf(stderr, "no harness named %s\n", replay_name.c_str());
      return 2;
    }
    const Result r = cluert::mc::replay(h->fn, replay_schedule);
    std::printf("%s\n--- trace ---\n%s-------------\n",
                r.found_violation ? r.violation.message.c_str()
                                  : "no violation on this schedule",
                r.violation.trace.c_str());
    return 0;
  }

  bool all_ok = true;
  for (const NamedHarness& h : registry) {
    if (!names.empty() &&
        std::find(names.begin(), names.end(), h.name) == names.end()) {
      continue;
    }
    all_ok = runOne(h, opt, verbose) && all_ok;
  }
  return all_ok ? 0 : 1;
}
