#!/usr/bin/env bash
# Runs clang-tidy (checks curated in .clang-tidy) over every first-party
# translation unit, using the compile_commands.json that the CMake configure
# step exports. Headers are covered transitively via HeaderFilterRegex.
#
# Skips with a notice (exit 0) when clang-tidy is not installed, so the CI
# gate degrades gracefully on toolchains without it.
#
# Usage: tools/run_tidy.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  echo "run_tidy.sh: clang-tidy not found on PATH; skipping lint pass" >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_tidy.sh: $BUILD_DIR/compile_commands.json missing" >&2
  exit 1
fi

# All first-party sources; third-party tests/benchmarks are configured out
# by the HeaderFilterRegex in .clang-tidy.
mapfile -t SOURCES < <(find src tests bench examples tools -name '*.cc' | sort)

STATUS=0
for f in "${SOURCES[@]}"; do
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done

if [[ $STATUS -ne 0 ]]; then
  echo "run_tidy.sh: clang-tidy reported findings" >&2
  exit 1
fi
echo "clang-tidy clean over ${#SOURCES[@]} translation units"
