# topo_run_shapes.sh — the star and ring topology flows sourced by
# tools/topo_run.sh (not a standalone script: relies on its option parsing,
# port helpers, scrape_node/conservation/drain_all, and cleanup trap).
#
# Both shapes end in the same gates: collector got every packet, zero oracle
# mismatches on every node, clue-path lookups nonzero, and per-peer counter
# conservation across every directed link that carried traffic.

# Star: injectors fan COUNT/3 packets into each of 3 leaves; leaves forward
# everything to the hub (their single egress), the hub egresses to the
# collector. Leaves share hop1.routes (neighbor: the injector table), the
# hub runs hop2.routes (neighbor: the leaves' table) — the same
# neighbor-derived chain the line uses, so clues stay genuine on every hop.
run_star() {
  local per=$((COUNT / 3))
  local total=$((per * 3))
  local hub_id=4
  echo "topo_run: star (3 leaves + hub), $total packets, mode=$MODE method=$METHOD (base port $BASE)"

  "$WIRE_PLAY" gen --out "$DIR" --hops 2 --size "$SIZE" --seed "$SEED" \
    || fail "table generation"

  for k in 1 2 3; do
    {
      echo "name = leaf$k"
      echo "router_id = $k"
      echo "listen = 127.0.0.1:$(data_port "$k")"
      echo "admin = 127.0.0.1:$(admin_port "$k")"
      echo "routes = $DIR/hop1.routes"
      echo "neighbor_routes = $DIR/inj.routes"
      echo "peer.default = 127.0.0.1:$(data_port $hub_id)"
      echo "method = $METHOD"
      echo "mode = $MODE"
      echo "oracle = 1"
      echo "drain_ms = 2000"
    } > "$DIR/leaf$k.conf"
    "$CLUERTD" --config "$DIR/leaf$k.conf" > "$DIR/leaf$k.log" 2>&1 &
    PIDS="$PIDS $!"
  done
  {
    echo "name = hub"
    echo "router_id = $hub_id"
    echo "listen = 127.0.0.1:$(data_port $hub_id)"
    echo "admin = 127.0.0.1:$(admin_port $hub_id)"
    echo "routes = $DIR/hop2.routes"
    echo "neighbor_routes = $DIR/hop1.routes"
    echo "peer.default = 127.0.0.1:$COLLECT_PORT"
    echo "method = $METHOD"
    echo "mode = $MODE"
    echo "oracle = 1"
    echo "drain_ms = 2000"
  } > "$DIR/hub.conf"
  "$CLUERTD" --config "$DIR/hub.conf" > "$DIR/hub.log" 2>&1 &
  PIDS="$PIDS $!"

  for k in 1 2 3; do wait_healthz "leaf$k" "$(admin_port "$k")"; done
  wait_healthz hub "$(admin_port $hub_id)"

  "$WIRE_PLAY" collect --listen "127.0.0.1:$COLLECT_PORT" --expect "$total" \
    --timeout-ms 60000 --out "$DIR/collect.txt" > /dev/null 2>&1 &
  local collect_pid=$!
  PIDS="$PIDS $collect_pid"
  sleep 0.2

  for k in 1 2 3; do
    "$WIRE_PLAY" inject --to "127.0.0.1:$(data_port "$k")" \
      --tables "$DIR/inj.routes,$DIR/hop1.routes,$DIR/hop2.routes" \
      --count "$per" --seed $((SEED + k)) --src-id 0 --pps 15000 \
      || fail "injection into leaf$k"
  done

  wait "$collect_pid"
  local collect_rc=$?
  PIDS=$(echo "$PIDS" | sed "s/ $collect_pid//")
  cat "$DIR/collect.txt"
  [ "$collect_rc" = 0 ] || fail "collector: $(cat "$DIR/collect.txt")"

  for k in 1 2 3; do
    scrape_node "leaf$k" "$(admin_port "$k")" 'lookup_case_total\{case="1"\}'
  done
  scrape_node hub "$(admin_port $hub_id)" 'lookup_case_total\{case="1"\}'

  # Fan-in conservation: each leaf's single egress equals the hub's rx from
  # that leaf's router id. The hub's egress equals what the collector got
  # (asserted by collect --expect above).
  conservation \
    "leaf1.prom:default=hub.prom:1=leaf1→hub" \
    "leaf2.prom:default=hub.prom:2=leaf2→hub" \
    "leaf3.prom:default=hub.prom:3=leaf3→hub" \
    || fail "per-peer counter conservation (star)"

  drain_all
  echo "topo_run: PASS (star: 3 leaves + hub, $total packets end-to-end, 0 oracle mismatches, counters conserved)"
}

# Ring: 5 nodes forward along the ring-shortest direction over one shared
# prefix universe (wire_play gen --ring). Next hops are real FIB ids —
# peer.<left>/peer.<right> pick the wire direction, peer.<self> sends a
# node's own blocks to the collector. The injector hits node 0 only; hop
# distance to the owning node spans 0..2.
run_ring() {
  local n=5
  local inj_src=8
  echo "topo_run: ring ($n nodes), $COUNT packets, mode=$MODE method=$METHOD (base port $BASE)"

  "$WIRE_PLAY" gen --out "$DIR" --ring "$n" --size "$SIZE" --seed "$SEED" \
    || fail "ring table generation"

  local tables="$DIR/inj.routes"
  for k in $(seq 0 $((n - 1))); do
    local next=$(((k + 1) % n))
    local prev=$(((k + n - 1) % n))
    {
      echo "name = ring$k"
      echo "router_id = $k"
      echo "listen = 127.0.0.1:$(data_port "$k")"
      echo "admin = 127.0.0.1:$(admin_port "$k")"
      echo "routes = $DIR/ring$k.routes"
      echo "neighbor_routes = $DIR/inj.routes"
      echo "peer.$next = 127.0.0.1:$(data_port "$next")"
      echo "peer.$prev = 127.0.0.1:$(data_port "$prev")"
      echo "peer.$k = 127.0.0.1:$COLLECT_PORT"
      echo "method = $METHOD"
      echo "mode = $MODE"
      echo "oracle = 1"
      echo "drain_ms = 2000"
    } > "$DIR/ring$k.conf"
    "$CLUERTD" --config "$DIR/ring$k.conf" > "$DIR/ring$k.log" 2>&1 &
    PIDS="$PIDS $!"
    tables="$tables,$DIR/ring$k.routes"
  done

  for k in $(seq 0 $((n - 1))); do
    wait_healthz "ring$k" "$(admin_port "$k")"
  done

  "$WIRE_PLAY" collect --listen "127.0.0.1:$COLLECT_PORT" --expect "$COUNT" \
    --timeout-ms 60000 --out "$DIR/collect.txt" > /dev/null 2>&1 &
  local collect_pid=$!
  PIDS="$PIDS $collect_pid"
  sleep 0.2

  "$WIRE_PLAY" inject --to "127.0.0.1:$(data_port 0)" --tables "$tables" \
    --count "$COUNT" --seed "$SEED" --src-id "$inj_src" --pps 15000 \
    || fail "injection"

  wait "$collect_pid"
  local collect_rc=$?
  PIDS=$(echo "$PIDS" | sed "s/ $collect_pid//")
  cat "$DIR/collect.txt"
  [ "$collect_rc" = 0 ] || fail "collector: $(cat "$DIR/collect.txt")"

  # The shared universe means a clue vertex always exists at the receiver, so
  # the clue path exercises cases 2/3 (case 1 is the absent-vertex case).
  for k in $(seq 0 $((n - 1))); do
    scrape_node "ring$k" "$(admin_port "$k")" 'lookup_case_total\{case="[23]"\}'
  done
  # Every node's own blocks must have egressed to the collector.
  for k in $(seq 0 $((n - 1))); do
    python3 "$METRICS_DIFF" \
      --require-nonzero "netio_peer_tx_packets_total\\{peer=\"$k\"\\}" \
      "$DIR/ring$k.prom" || fail "ring$k: no collector egress"
  done
  python3 "$METRICS_DIFF" \
    --require-nonzero "netio_peer_rx_packets_total\\{src=\"$inj_src\"\\}" \
    "$DIR/ring0.prom" || fail "ring0: injector rx not accounted"

  # Directed links that carry traffic under ring-shortest forwarding from a
  # single injection point at node 0: 0→1→2 clockwise, 0→4→3 counter.
  conservation \
    "ring0.prom:1=ring1.prom:0=ring0→ring1" \
    "ring1.prom:2=ring2.prom:1=ring1→ring2" \
    "ring0.prom:4=ring4.prom:0=ring0→ring4" \
    "ring4.prom:3=ring3.prom:4=ring4→ring3" \
    || fail "per-peer counter conservation (ring)"

  drain_all
  echo "topo_run: PASS (ring: $n nodes, $COUNT packets end-to-end, 0 oracle mismatches, counters conserved)"
}
