// wire_play — the traffic side of the cluertd topology harness
// (tools/topo_run.sh). Four subcommands, all IPv4:
//
//   gen --out DIR --hops N [--size S] [--seed X] [--shared F]
//       Generates a chain of neighbor-derived tables: DIR/inj.routes (the
//       injector's table, i.e. hop 1's neighbor) and DIR/hop1..hopN.routes,
//       each derived from its predecessor with `shared` fraction of common
//       prefixes — the similarity knob the clue mechanism lives off.
//
//   gen --out DIR --ring N [--size S] [--seed X]
//       Ring variant: one shared prefix universe (per-node /16 blocks plus
//       random sub-prefixes), written N times as DIR/ring0..ring{N-1}.routes
//       with next hops pointing the ring-shortest direction toward each
//       block's owner (the owner's own blocks carry next hop = its id, which
//       topo_run.sh maps to the collector via peer.<id>). DIR/inj.routes is
//       node 0's table, so the injector's clue stamps stay genuine.
//
//   inject --to IP:PORT --tables f0,f1,...,fN --count N [--seed X]
//          [--pps R] [--src-id K] [--ttl T]
//       Draws destinations that have a BMP in EVERY listed table (so the
//       full line delivers them), stamps each packet with the clue the
//       injector's table (f0) yields — its own BMP length, per §2 — and a
//       16-byte payload of {seq, send_ns}, then sends paced UDP.
//
//   collect --listen IP:PORT --expect N [--timeout-ms M] [--out FILE]
//       Binds the end-of-line sink, receives until N packets or timeout,
//       decodes each, and writes a summary line. Exit 0 iff all N arrived
//       and decoded.
//
//   get IP:PORT PATH
//       Minimal HTTP GET against a cluertd admin endpoint; body to stdout.
//       (Keeps the harness dependency-free — no curl in the container.)
#define _GNU_SOURCE 1

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "mem/access_counter.h"
#include "netio/socket.h"
#include "netio/wire.h"
#include "rib/fib.h"
#include "rib/internet_gen.h"
#include "rib/table_gen.h"
#include "trie/binary_trie.h"

namespace {

using cluert::Rng;
using cluert::ip::Ip4Addr;
using A = Ip4Addr;

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Args {
  std::vector<std::string> positional;
  std::string get(const std::string& key, const std::string& def = "") const {
    for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
      if (raw[i] == key) return raw[i + 1];
    }
    return def;
  }
  std::uint64_t getU64(const std::string& key, std::uint64_t def) const {
    const std::string v = get(key);
    return v.empty() ? def : std::stoull(v);
  }
  double getF(const std::string& key, double def) const {
    const std::string v = get(key);
    return v.empty() ? def : std::stod(v);
  }
  std::vector<std::string> raw;
};

bool writeText(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return out.good();
}

std::optional<cluert::rib::Fib<A>> loadFib(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return cluert::rib::Fib<A>::parse(ss.str());
}

std::vector<std::string> splitComma(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    out.push_back(s.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// gen --ring: the shared universe + per-node ring-shortest next hops.
int cmdGenRing(const std::string& dir, std::size_t nodes, std::size_t size,
               std::uint64_t seed) {
  using MatchT = cluert::trie::Match<A>;
  Rng rng(seed);
  // Universe: for each owner k, the block 10.(k+1).0.0/16 plus sub-prefixes
  // inside it. Every node shares this prefix set — only next hops differ —
  // so a clue stamped by any ring neighbor is genuine at every receiver.
  struct Owned {
    cluert::ip::Prefix4 prefix;
    std::size_t owner;
  };
  std::vector<Owned> universe;
  const std::size_t per_node = std::max<std::size_t>(size / nodes, 1);
  for (std::size_t k = 0; k < nodes; ++k) {
    const Ip4Addr block(
        (10u << 24) | (static_cast<std::uint32_t>(k + 1) << 16));
    universe.push_back(Owned{cluert::ip::Prefix4(block, 16), k});
    for (std::size_t i = 1; i < per_node; ++i) {
      const int len = static_cast<int>(rng.uniform(18, 26));
      Ip4Addr addr = block;
      for (int b = 16; b < len; ++b) {
        addr = addr.withBit(b, static_cast<unsigned>(rng.u32() & 1));
      }
      universe.push_back(Owned{cluert::ip::Prefix4(addr, len), k});
    }
  }
  for (std::size_t j = 0; j < nodes; ++j) {
    std::vector<MatchT> entries;
    entries.reserve(universe.size());
    for (const Owned& o : universe) {
      std::size_t nh = j;
      if (o.owner != j) {
        const std::size_t cw = (o.owner + nodes - j) % nodes;   // via j+1
        const std::size_t ccw = (j + nodes - o.owner) % nodes;  // via j-1
        nh = cw <= ccw ? (j + 1) % nodes : (j + nodes - 1) % nodes;
      }
      entries.push_back(MatchT{o.prefix, static_cast<cluert::NextHop>(nh)});
    }
    const cluert::rib::Fib<A> fib(std::move(entries));
    const std::string path = dir + "/ring" + std::to_string(j) + ".routes";
    if (!writeText(path, fib.serialize())) {
      std::fprintf(stderr, "gen: cannot write %s\n", path.c_str());
      return 1;
    }
    if (j == 0 && !writeText(dir + "/inj.routes", fib.serialize())) {
      std::fprintf(stderr, "gen: cannot write %s/inj.routes\n", dir.c_str());
      return 1;
    }
  }
  std::printf("gen: ring of %zu tables, %zu routes each, under %s\n", nodes,
              universe.size(), dir.c_str());
  return 0;
}

int cmdGen(const Args& args) {
  const std::string dir = args.get("--out");
  if (dir.empty()) {
    std::fprintf(stderr, "gen: --out DIR required\n");
    return 2;
  }
  const std::size_t hops = args.getU64("--hops", 3);
  const std::size_t size = args.getU64("--size", 4000);
  const std::uint64_t seed = args.getU64("--seed", 1);
  const double shared = args.getF("--shared", 0.9);
  const std::size_t ring = args.getU64("--ring", 0);
  if (ring > 0) {
    if (ring < 3) {
      std::fprintf(stderr, "gen: --ring needs at least 3 nodes\n");
      return 2;
    }
    return cmdGenRing(dir, ring, size, seed);
  }

  Rng rng(seed);
  cluert::rib::GenOptions<A> gopt;
  gopt.size = size;
  gopt.histogram = cluert::rib::internetLengths1999();
  cluert::rib::Fib<A> table = cluert::rib::TableGen<A>::generate(rng, gopt);
  if (!writeText(dir + "/inj.routes", table.serialize())) {
    std::fprintf(stderr, "gen: cannot write %s/inj.routes\n", dir.c_str());
    return 1;
  }
  for (std::size_t h = 1; h <= hops; ++h) {
    cluert::rib::NeighborOptions<A> nopt;
    nopt.shared = static_cast<std::size_t>(static_cast<double>(size) * shared);
    nopt.fresh = size - nopt.shared;
    table = cluert::rib::TableGen<A>::deriveNeighbor(table, rng, nopt);
    const std::string path = dir + "/hop" + std::to_string(h) + ".routes";
    if (!writeText(path, table.serialize())) {
      std::fprintf(stderr, "gen: cannot write %s\n", path.c_str());
      return 1;
    }
  }
  std::printf("gen: %zu tables of %zu routes under %s\n", hops + 1, size,
              dir.c_str());
  return 0;
}

int cmdInject(const Args& args) {
  const auto to = cluert::netio::SockAddr::parse(args.get("--to"));
  if (!to) {
    std::fprintf(stderr, "inject: --to IP:PORT required\n");
    return 2;
  }
  const auto table_paths = splitComma(args.get("--tables"));
  if (table_paths.empty() || table_paths.front().empty()) {
    std::fprintf(stderr, "inject: --tables f0,f1,... required\n");
    return 2;
  }
  const std::uint64_t count = args.getU64("--count", 1000);
  const std::uint64_t seed = args.getU64("--seed", 1);
  const std::uint64_t pps = args.getU64("--pps", 20000);
  const std::uint16_t src_id =
      static_cast<std::uint16_t>(args.getU64("--src-id", 0));
  const std::uint8_t ttl =
      static_cast<std::uint8_t>(args.getU64("--ttl", cluert::netio::kDefaultTtl));

  std::vector<cluert::trie::BinaryTrie<A>> tries;
  for (const auto& path : table_paths) {
    const auto fib = loadFib(path);
    if (!fib) {
      std::fprintf(stderr, "inject: cannot load %s\n", path.c_str());
      return 1;
    }
    tries.push_back(fib->buildTrie());
  }

  // Destination pool: addresses inside injector-table prefixes that also
  // resolve in every downstream table — the line can deliver them end to
  // end. Drawn once, then cycled.
  cluert::mem::AccessCounter acc;
  Rng rng(seed);
  const auto inj_prefixes = loadFib(table_paths.front())->prefixes();
  struct Draw {
    A dest;
    cluert::core::ClueField clue;
  };
  std::vector<Draw> pool;
  const std::size_t pool_target = std::min<std::uint64_t>(count, 4096);
  std::uint64_t attempts = 0;
  while (pool.size() < pool_target && attempts < pool_target * 200ULL) {
    ++attempts;
    const auto& p = inj_prefixes[rng.index(inj_prefixes.size())];
    const std::uint32_t mask =
        p.length() == 0 ? 0u
                        : ~std::uint32_t{0} << (32 - p.length());
    const A dest(
        (p.addr().value() & mask) |
        (static_cast<std::uint32_t>(rng.uniform(0, ~std::uint32_t{0})) &
         ~mask));
    bool everywhere = true;
    for (std::size_t t = 1; t < tries.size(); ++t) {
      if (!tries[t].lookup(dest, acc)) {
        everywhere = false;
        break;
      }
    }
    if (!everywhere) continue;
    const auto inj_match = tries.front().lookup(dest, acc);
    Draw d;
    d.dest = dest;
    d.clue = inj_match && inj_match->prefix.length() > 0
                 ? cluert::core::ClueField::of(inj_match->prefix.length())
                 : cluert::core::ClueField::none();
    pool.push_back(d);
  }
  if (pool.empty()) {
    std::fprintf(stderr, "inject: no destination resolves in every table\n");
    return 1;
  }

  cluert::netio::SockAddr any;  // 0.0.0.0:0
  cluert::netio::Fd sock = cluert::netio::udpSocket(any);
  if (!sock.valid()) {
    std::fprintf(stderr, "inject: cannot create socket\n");
    return 1;
  }

  // Paced send: bursts of up to 64, sleeping to hold ~pps. Short sendBatch
  // counts (kernel backpressure) retry the remainder after a pause —
  // injection must be lossless at the source or the collector's expect
  // count means nothing.
  const std::uint64_t burst = 64;
  const std::uint64_t ns_per_burst =
      pps == 0 ? 0 : burst * 1000000000ULL / pps;
  std::array<std::uint8_t, 64 * cluert::netio::kMaxDatagram> bufs;
  std::uint64_t sent = 0;
  std::uint64_t next_burst_ns = nowNs();
  while (sent < count) {
    const std::uint64_t n = std::min(burst, count - sent);
    std::array<cluert::netio::OutDatagram, 64> out;
    for (std::uint64_t i = 0; i < n; ++i) {
      const Draw& d = pool[(sent + i) % pool.size()];
      std::uint8_t payload[16];
      const std::uint64_t seq = sent + i;
      const std::uint64_t t = nowNs();
      std::memcpy(payload, &seq, 8);
      std::memcpy(payload + 8, &t, 8);
      cluert::netio::WirePacket<A> pkt;
      pkt.dest = d.dest;
      pkt.clue = d.clue;
      pkt.ttl = ttl;
      pkt.src_id = src_id;
      pkt.payload = {payload, sizeof(payload)};
      std::uint8_t* buf = bufs.data() + i * cluert::netio::kMaxDatagram;
      const std::size_t len =
          cluert::netio::encode(pkt, {buf, cluert::netio::kMaxDatagram});
      out[i] = cluert::netio::OutDatagram{buf, len, *to};
    }
    std::uint64_t done = 0;
    while (done < n) {
      const int s = cluert::netio::sendBatch(
          sock.get(), out.data() + done, static_cast<int>(n - done));
      if (s <= 0) {
        ::usleep(200);
        continue;
      }
      done += static_cast<std::uint64_t>(s);
    }
    sent += n;
    if (ns_per_burst > 0) {
      next_burst_ns += ns_per_burst;
      const std::uint64_t now = nowNs();
      if (next_burst_ns > now) {
        ::usleep(static_cast<unsigned>((next_burst_ns - now) / 1000));
      } else {
        next_burst_ns = now;
      }
    }
  }
  std::printf("inject: sent %llu packets to %s (pool %zu)\n",
              static_cast<unsigned long long>(sent),
              to->toString().c_str(), pool.size());
  return 0;
}

int cmdCollect(const Args& args) {
  const auto listen = cluert::netio::SockAddr::parse(args.get("--listen"));
  if (!listen) {
    std::fprintf(stderr, "collect: --listen IP:PORT required\n");
    return 2;
  }
  const std::uint64_t expect = args.getU64("--expect", 0);
  const std::uint64_t timeout_ms = args.getU64("--timeout-ms", 30000);
  const std::string out_path = args.get("--out");

  cluert::netio::Fd sock = cluert::netio::udpSocket(*listen);
  if (!sock.valid()) {
    std::fprintf(stderr, "collect: cannot bind %s\n",
                 listen->toString().c_str());
    return 1;
  }
  std::vector<cluert::netio::DatagramBuf> bufs(64);
  std::uint64_t received = 0, decode_errors = 0, clue_present = 0;
  std::uint64_t latency_ns_sum = 0, latency_samples = 0;
  const std::uint64_t deadline = nowNs() + timeout_ms * 1000000ULL;
  while (received + decode_errors < expect && nowNs() < deadline) {
    const int n = cluert::netio::recvBatch(sock.get(), bufs.data(), 64);
    if (n < 0) break;
    if (n == 0) {
      ::usleep(1000);
      continue;
    }
    for (int i = 0; i < n; ++i) {
      const auto r = cluert::netio::decode<A>(
          {bufs[i].data.data(), bufs[i].len});
      if (!r.ok()) {
        ++decode_errors;
        continue;
      }
      ++received;
      if (r.packet.clue.present) ++clue_present;
      if (r.packet.payload.size() == 16) {
        std::uint64_t send_ns = 0;
        std::memcpy(&send_ns, r.packet.payload.data() + 8, 8);
        const std::uint64_t now = nowNs();
        if (now > send_ns) {
          latency_ns_sum += now - send_ns;
          ++latency_samples;
        }
      }
    }
  }
  std::ostringstream summary;
  summary << "received=" << received << " expect=" << expect
          << " decode_errors=" << decode_errors
          << " clue_present=" << clue_present << " mean_latency_ns="
          << (latency_samples > 0 ? latency_ns_sum / latency_samples : 0)
          << "\n";
  std::fputs(summary.str().c_str(), stdout);
  if (!out_path.empty()) writeText(out_path, summary.str());
  return received >= expect && decode_errors == 0 ? 0 : 1;
}

int cmdGet(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "get: usage: wire_play get IP:PORT PATH\n");
    return 2;
  }
  const auto addr = cluert::netio::SockAddr::parse(args.positional[0]);
  if (!addr) {
    std::fprintf(stderr, "get: bad address\n");
    return 2;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 1;
  cluert::netio::Fd sock(fd);
  const sockaddr_in sin = addr->toSockaddrIn();
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sin), sizeof(sin)) !=
      0) {
    std::fprintf(stderr, "get: cannot connect %s\n",
                 addr->toString().c_str());
    return 1;
  }
  const std::string req =
      "GET " + args.positional[1] + " HTTP/1.0\r\n\r\n";
  if (::write(fd, req.data(), req.size()) !=
      static_cast<ssize_t>(req.size())) {
    return 1;
  }
  std::string resp;
  char buf[4096];
  ssize_t r;
  while ((r = ::read(fd, buf, sizeof(buf))) > 0) {
    resp.append(buf, static_cast<std::size_t>(r));
  }
  const std::size_t body = resp.find("\r\n\r\n");
  if (body == std::string::npos) return 1;
  const bool ok = resp.compare(0, 12, "HTTP/1.0 200") == 0;
  std::fwrite(resp.data() + body + 4, 1, resp.size() - body - 4, stdout);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: wire_play gen|inject|collect|get [options]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  Args args;
  for (int i = 2; i < argc; ++i) {
    args.raw.emplace_back(argv[i]);
    if (argv[i][0] != '-') {
      // Skip values of --key value pairs: only tokens not preceded by a
      // --key are positional.
      if (i == 2 || argv[i - 1][0] != '-') args.positional.emplace_back(argv[i]);
    }
  }
  if (cmd == "gen") return cmdGen(args);
  if (cmd == "inject") return cmdInject(args);
  if (cmd == "collect") return cmdCollect(args);
  if (cmd == "get") return cmdGet(args);
  std::fprintf(stderr, "unknown subcommand: %s\n", cmd.c_str());
  return 2;
}
